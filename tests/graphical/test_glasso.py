"""Tests for the graphical lasso estimator."""

import numpy as np
import pytest

from repro.graphical import (
    GraphicalLassoResult,
    RunningCovariance,
    empirical_covariance,
    graphical_lasso,
    shrink_covariance,
)


def _chain_precision(p=5, off=0.4):
    """Tridiagonal (chain-graph) precision matrix."""
    precision = np.eye(p)
    for i in range(p - 1):
        precision[i, i + 1] = off
        precision[i + 1, i] = off
    return precision


class TestGraphicalLasso:
    def test_precision_is_symmetric(self, rng):
        X = rng.standard_normal((200, 4))
        result = graphical_lasso(X, alpha=0.05)
        np.testing.assert_allclose(result.precision, result.precision.T, atol=1e-8)

    def test_recovers_chain_structure(self, rng):
        true_precision = _chain_precision()
        covariance = np.linalg.inv(true_precision)
        X = rng.multivariate_normal(np.zeros(5), covariance, size=3000)
        result = graphical_lasso(X, alpha=0.05, shrinkage=0.0)
        estimated = result.precision
        # Direct neighbours must carry clearly larger weight than the
        # (conditionally independent) distant pair (0, 4).
        assert abs(estimated[0, 1]) > abs(estimated[0, 4]) + 0.05
        assert abs(estimated[2, 3]) > abs(estimated[0, 3]) + 0.05

    def test_large_alpha_gives_diagonal_precision(self, rng):
        X = rng.standard_normal((300, 4))
        result = graphical_lasso(X, alpha=5.0)
        off_diag = result.precision - np.diag(np.diag(result.precision))
        np.testing.assert_allclose(off_diag, 0.0, atol=1e-4)

    def test_accepts_precomputed_covariance(self, rng):
        X = rng.standard_normal((100, 3))
        cov = empirical_covariance(X)
        result = graphical_lasso(cov, alpha=0.1, from_covariance=True)
        assert result.precision.shape == (3, 3)

    def test_single_variable(self):
        result = graphical_lasso(np.array([[2.0]]), alpha=0.1, from_covariance=True)
        assert result.precision[0, 0] == pytest.approx(0.5)

    def test_negative_alpha_raises(self, rng):
        with pytest.raises(ValueError):
            graphical_lasso(rng.standard_normal((10, 3)), alpha=-0.1)

    def test_non_square_covariance_raises(self, rng):
        with pytest.raises(ValueError):
            graphical_lasso(rng.standard_normal((3, 4)), alpha=0.1, from_covariance=True)

    def test_precision_positive_diagonal(self, rng):
        X = rng.standard_normal((150, 5))
        result = graphical_lasso(X, alpha=0.05)
        assert np.all(np.diag(result.precision) > 0)


class TestWarmStartedGlasso:
    def test_warm_equals_cold_within_tolerance(self, rng):
        """Same convex problem: warm and cold runs reach the same solution."""
        X = rng.multivariate_normal(
            np.zeros(5), np.linalg.inv(_chain_precision()), size=1000
        )
        cold = graphical_lasso(X, alpha=0.05, max_iter=200, tol=1e-8)
        warm = graphical_lasso(
            X, alpha=0.05, max_iter=200, tol=1e-8, warm_start=cold
        )
        assert warm.warm_started
        np.testing.assert_allclose(warm.precision, cold.precision, atol=1e-4)
        np.testing.assert_allclose(warm.covariance, cold.covariance, atol=1e-4)

    def test_warm_start_from_solution_converges_immediately(self, rng):
        X = rng.standard_normal((400, 6))
        cold = graphical_lasso(X, alpha=0.1, max_iter=100, tol=1e-6)
        warm = graphical_lasso(X, alpha=0.1, max_iter=100, tol=1e-6, warm_start=cold)
        assert warm.converged
        assert warm.n_iter <= max(cold.n_iter // 2, 1)

    def test_intersection_map_with_added_and_dropped_variables(self, rng):
        """The map seeds shared pairs; new/dropped variables start cold."""
        X = rng.multivariate_normal(
            np.zeros(5), np.linalg.inv(_chain_precision()), size=800
        )
        previous = graphical_lasso(X[:, :4], alpha=0.05, max_iter=200, tol=1e-8)
        # New problem: variables [0, 2, 3, 4] — drops 1, adds 4.
        keep = [0, 2, 3, 4]
        cold = graphical_lasso(X[:, keep], alpha=0.05, max_iter=200, tol=1e-8)
        warm = graphical_lasso(
            X[:, keep],
            alpha=0.05,
            max_iter=200,
            tol=1e-8,
            warm_start=previous,
            warm_start_map=np.array([0, 2, 3, -1]),
        )
        assert warm.warm_started
        np.testing.assert_allclose(warm.precision, cold.precision, atol=1e-4)

    def test_inapplicable_map_degrades_to_cold(self, rng):
        X = rng.standard_normal((200, 4))
        previous = graphical_lasso(X, alpha=0.05)
        # Wrong length and out-of-range source indices are both rejected.
        short = graphical_lasso(
            X, alpha=0.05, warm_start=previous, warm_start_map=np.array([0, 1])
        )
        out_of_range = graphical_lasso(
            X, alpha=0.05, warm_start=previous, warm_start_map=np.array([0, 1, 2, 9])
        )
        cold = graphical_lasso(X, alpha=0.05)
        for result in (short, out_of_range):
            assert not result.warm_started
            np.testing.assert_array_equal(result.precision, cold.precision)

    def test_dimension_mismatch_without_map_degrades_to_cold(self, rng):
        X = rng.standard_normal((200, 4))
        previous = graphical_lasso(X[:, :3], alpha=0.05)
        result = graphical_lasso(X, alpha=0.05, warm_start=previous)
        assert not result.warm_started
        # Both directions: a *smaller* new problem must not be seeded
        # positionally from a larger previous result either.
        bigger_previous = graphical_lasso(X, alpha=0.05)
        shrunk = graphical_lasso(X[:, :3], alpha=0.05, warm_start=bigger_previous)
        assert not shrunk.warm_started

    def test_fewer_than_two_mapped_variables_degrades_to_cold(self, rng):
        X = rng.standard_normal((200, 3))
        previous = graphical_lasso(X, alpha=0.05)
        result = graphical_lasso(
            X, alpha=0.05, warm_start=previous, warm_start_map=np.array([0, -1, -1])
        )
        assert not result.warm_started

    def test_indefinite_seed_falls_back_to_cold(self, rng):
        """A seed block that breaks positive-definiteness must be discarded."""
        X = rng.standard_normal((200, 3))
        bogus_cov = np.full((3, 3), 50.0)  # wildly inconsistent off-diagonals
        bogus = GraphicalLassoResult(
            covariance=bogus_cov, precision=np.eye(3), n_iter=1, converged=True
        )
        result = graphical_lasso(X, alpha=0.05, warm_start=bogus)
        cold = graphical_lasso(X, alpha=0.05)
        assert not result.warm_started
        np.testing.assert_array_equal(result.precision, cold.precision)

    def test_cold_result_is_unchanged_by_feature(self, rng):
        """No warm_start argument: byte-identical to the historical path."""
        X = rng.standard_normal((150, 4))
        first = graphical_lasso(X, alpha=0.05)
        second = graphical_lasso(X, alpha=0.05, warm_start=None)
        np.testing.assert_array_equal(first.precision, second.precision)
        assert not first.warm_started


class TestRunningCovariance:
    def test_single_shot_matches_empirical(self, rng):
        X = rng.standard_normal((60, 5))
        running = RunningCovariance()
        running.add_rows(X)
        np.testing.assert_allclose(
            running.covariance(), empirical_covariance(X), atol=1e-12
        )

    def test_row_appends_match_full_recompute(self, rng):
        X = rng.standard_normal((90, 4))
        running = RunningCovariance()
        for chunk in np.array_split(X, 5):
            running.add_rows(chunk)
        np.testing.assert_allclose(
            running.covariance(), empirical_covariance(X), atol=1e-10
        )

    def test_column_appends_match_full_recompute(self, rng):
        X = rng.standard_normal((50, 6))
        running = RunningCovariance()
        running.add_rows(X[:, :2])
        running.add_columns(X[:, 2:4])
        running.add_columns(X[:, 4:])
        np.testing.assert_allclose(
            running.covariance(), empirical_covariance(X), atol=1e-10
        )

    def test_update_diffs_rows_and_columns_together(self, rng):
        X = rng.standard_normal((80, 7))
        running = RunningCovariance()
        running.update(X[:30, :3])
        running.update(X[:55, :5])
        running.update(X)
        assert running.n_rows == 80 and running.n_features == 7
        np.testing.assert_allclose(
            running.covariance(), empirical_covariance(X), atol=1e-10
        )

    def test_shrinkage_matches_empirical(self, rng):
        X = rng.standard_normal((40, 3)) @ np.diag([1.0, 4.0, 9.0])
        running = RunningCovariance()
        running.update(X)
        np.testing.assert_allclose(
            running.covariance(shrinkage=0.1),
            empirical_covariance(X, shrinkage=0.1),
            atol=1e-10,
        )

    def test_subblock_equals_submatrix_covariance(self, rng):
        """Centring is per-column: sub-blocks are exact submatrix covariances."""
        X = rng.standard_normal((70, 6))
        running = RunningCovariance()
        running.update(X)
        sub = [0, 2, 5]
        np.testing.assert_allclose(
            running.covariance()[np.ix_(sub, sub)],
            empirical_covariance(X[:, sub]),
            atol=1e-10,
        )

    def test_shrunk_subblock_matches_shrunk_submatrix(self, rng):
        X = rng.standard_normal((70, 6))
        running = RunningCovariance()
        running.update(X)
        sub = [1, 3, 4]
        np.testing.assert_allclose(
            shrink_covariance(running.covariance()[np.ix_(sub, sub)], 0.1),
            empirical_covariance(X[:, sub], shrinkage=0.1),
            atol=1e-10,
        )

    def test_shrinking_update_rejected(self, rng):
        running = RunningCovariance()
        running.update(rng.standard_normal((10, 4)))
        with pytest.raises(ValueError):
            running.update(rng.standard_normal((5, 4)))
        with pytest.raises(ValueError):
            running.update(rng.standard_normal((12, 3)))

    def test_mismatched_appends_rejected(self, rng):
        running = RunningCovariance()
        with pytest.raises(ValueError):
            running.add_columns(rng.standard_normal((5, 2)))
        running.add_rows(rng.standard_normal((5, 3)))
        with pytest.raises(ValueError):
            running.add_rows(rng.standard_normal((5, 4)))
        with pytest.raises(ValueError):
            running.add_columns(rng.standard_normal((4, 2)))

    def test_empty_readout_rejected(self):
        with pytest.raises(ValueError):
            RunningCovariance().covariance()


class TestEmpiricalCovariance:
    def test_matches_numpy_cov(self, rng):
        X = rng.standard_normal((500, 3))
        ours = empirical_covariance(X)
        reference = np.cov(X, rowvar=False, bias=True)
        np.testing.assert_allclose(ours, reference, atol=1e-10)

    def test_shrinkage_moves_toward_identity_scale(self, rng):
        X = rng.standard_normal((100, 3)) @ np.diag([1.0, 5.0, 10.0])
        raw = empirical_covariance(X, shrinkage=0.0)
        shrunk = empirical_covariance(X, shrinkage=1.0)
        # Full shrinkage yields an isotropic matrix.
        np.testing.assert_allclose(shrunk, np.eye(3) * np.trace(raw) / 3, atol=1e-8)

    def test_invalid_shrinkage_raises(self, rng):
        with pytest.raises(ValueError):
            empirical_covariance(rng.standard_normal((10, 2)), shrinkage=2.0)


class TestRelativeStoppingCriterion:
    """``early_stop=True`` switches the sweep criterion from an absolute mean
    precision-change threshold to one relative to the precision's own scale,
    so the sweep count no longer depends on the units of the data."""

    def _scaled_runs(self, rng, **kwargs):
        data = rng.multivariate_normal(
            np.zeros(6), np.linalg.inv(_chain_precision(6)), size=500
        )
        # Rescaling the data by c scales the covariance by c^2 and the
        # precision by c^-2; scaling alpha along keeps the *problem*
        # identical up to units, so a unit-free criterion must take the
        # same number of sweeps on both.
        return [
            graphical_lasso(
                data * scale, alpha=0.05 * scale**2, max_iter=200, **kwargs
            )
            for scale in (1.0, 100.0)
        ]

    def test_relative_criterion_is_scale_invariant(self, rng):
        unit, scaled = self._scaled_runs(rng, early_stop=True, tol=1e-4)
        assert unit.converged and scaled.converged
        assert unit.n_iter == scaled.n_iter

    def test_legacy_absolute_criterion_is_not(self, rng):
        """Regression pin for the historical behaviour the knob preserves:
        the absolute threshold effectively tightens as the precision scale
        shrinks, so the rescaled run needs extra sweeps."""
        unit, scaled = self._scaled_runs(rng, tol=1e-4)
        assert scaled.n_iter > unit.n_iter

    def test_early_stop_reports_final_change(self, rng):
        result, _ = self._scaled_runs(rng, early_stop=True, tol=1e-4)
        assert result.final_change is not None
        assert 0.0 <= result.final_change <= 1e-4
