"""Tests for the coordinate-descent lasso inner solver."""

import numpy as np
import pytest

from repro.graphical import lasso_coordinate_descent


class TestLassoCoordinateDescent:
    def test_zero_penalty_recovers_least_squares(self, rng):
        X = rng.standard_normal((100, 4))
        true_w = np.array([1.5, -2.0, 0.0, 0.5])
        y = X @ true_w
        gram = X.T @ X
        linear = X.T @ y
        solution = lasso_coordinate_descent(gram, linear, alpha=0.0, max_iter=500)
        np.testing.assert_allclose(solution, true_w, atol=1e-3)

    def test_large_penalty_gives_zero_solution(self, rng):
        X = rng.standard_normal((50, 3))
        y = X[:, 0]
        gram, linear = X.T @ X, X.T @ y
        solution = lasso_coordinate_descent(gram, linear, alpha=1e6)
        np.testing.assert_allclose(solution, 0.0)

    def test_penalty_induces_sparsity(self, rng):
        X = rng.standard_normal((200, 6))
        true_w = np.array([3.0, 0.0, 0.0, 0.0, 0.0, -3.0])
        y = X @ true_w + 0.01 * rng.standard_normal(200)
        gram, linear = X.T @ X, X.T @ y
        solution = lasso_coordinate_descent(gram, linear, alpha=50.0)
        assert np.sum(np.abs(solution) > 1e-6) <= 3
        assert abs(solution[0]) > 0.5 and abs(solution[5]) > 0.5

    def test_warm_start_accepted(self, rng):
        X = rng.standard_normal((50, 3))
        y = X[:, 0]
        gram, linear = X.T @ X, X.T @ y
        warm = lasso_coordinate_descent(gram, linear, alpha=1.0, initial=np.ones(3))
        cold = lasso_coordinate_descent(gram, linear, alpha=1.0)
        np.testing.assert_allclose(warm, cold, atol=1e-4)

    def test_invalid_inputs_raise(self, rng):
        gram = rng.standard_normal((3, 2))
        with pytest.raises(ValueError):
            lasso_coordinate_descent(gram, np.zeros(3), alpha=0.1)
        square = np.eye(3)
        with pytest.raises(ValueError):
            lasso_coordinate_descent(square, np.zeros(2), alpha=0.1)
        with pytest.raises(ValueError):
            lasso_coordinate_descent(square, np.zeros(3), alpha=-1.0)
