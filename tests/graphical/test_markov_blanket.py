"""Tests for Markov-blanket extraction and the dependency graph export."""

import networkx as nx
import numpy as np
import pytest

from repro.graphical import dependency_graph, markov_blanket


PRECISION = np.array(
    [
        [1.0, 0.5, 0.0, 0.0],
        [0.5, 1.0, 0.3, 0.0],
        [0.0, 0.3, 1.0, 0.0],
        [0.0, 0.0, 0.0, 1.0],
    ]
)


class TestMarkovBlanket:
    def test_returns_direct_neighbours_only(self):
        assert markov_blanket(PRECISION, target=0) == [1]
        assert markov_blanket(PRECISION, target=1) == [0, 2]

    def test_isolated_variable_has_empty_blanket(self):
        assert markov_blanket(PRECISION, target=3) == []

    def test_threshold_filters_small_entries(self):
        noisy = PRECISION.copy()
        noisy[0, 3] = noisy[3, 0] = 1e-9
        assert markov_blanket(noisy, target=0, threshold=1e-6) == [1]
        assert 3 in markov_blanket(noisy, target=0, threshold=1e-12)

    def test_out_of_range_target_raises(self):
        with pytest.raises(ValueError):
            markov_blanket(PRECISION, target=10)

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            markov_blanket(np.zeros((2, 3)), target=0)


class TestDependencyGraph:
    def test_graph_edges_match_nonzero_entries(self):
        graph = dependency_graph(PRECISION, names=["a", "b", "c", "d"])
        assert isinstance(graph, nx.Graph)
        assert graph.has_edge("a", "b")
        assert graph.has_edge("b", "c")
        assert not graph.has_edge("a", "c")
        assert graph.number_of_nodes() == 4

    def test_edge_weights_are_precision_entries(self):
        graph = dependency_graph(PRECISION)
        assert graph["0"]["1"]["weight"] == pytest.approx(0.5)

    def test_name_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            dependency_graph(PRECISION, names=["only", "two"])
