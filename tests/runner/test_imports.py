"""Import-order regression tests for the runner subsystem.

``repro.runner`` must be importable in a fresh interpreter *before* any
``repro.experiments`` module: spawn start-method platforms (the macOS and
Windows default) bootstrap process-pool workers by unpickling
``repro.runner.executor.run_trial``, which imports ``repro.runner`` first.
A module-level import of ``repro.experiments`` from inside the runner
closes a cycle through ``repro/experiments/__init__.py`` and breaks that
bootstrap (see REVIEW history), so these tests exercise every entry module
in a clean subprocess.
"""

import subprocess
import sys

import pytest

ENTRY_MODULES = [
    "repro.runner",
    "repro.runner.spec",
    "repro.runner.cache",
    "repro.runner.results",
    "repro.runner.query",
    "repro.runner.executor",
    "repro.runner.engine",
    "repro.experiments",
]


@pytest.mark.parametrize("module", ENTRY_MODULES)
def test_fresh_interpreter_import(module, subprocess_env):
    proc = subprocess.run(
        [sys.executable, "-c", f"import {module}"],
        capture_output=True,
        text=True,
        env=subprocess_env,
    )
    assert proc.returncode == 0, (
        f"`import {module}` failed in a fresh interpreter:\n{proc.stderr}"
    )


def test_worker_payload_unpickles_in_fresh_interpreter(subprocess_env):
    """The exact object a pool worker unpickles must import cleanly."""
    code = (
        "import pickle, sys\n"
        "from repro.runner.executor import run_trial\n"
        "payload = pickle.dumps(run_trial)\n"
        "assert pickle.loads(payload) is run_trial\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=subprocess_env,
    )
    assert proc.returncode == 0, proc.stderr
