"""SQLite-backend-specific behaviour (everything protocol-level lives in
``test_broker_contract.py``): path resolution, pragma/schema setup, the
corrupt-row quarantine, connection lifecycle and the stats counters."""

from __future__ import annotations

import pickle
import sqlite3

import pytest

from repro.experiments import EvaluationProtocol
from repro.runner import TrialSpec
from repro.runner.brokers.sqlite import DB_FILENAME, SqliteBroker

FAST = EvaluationProtocol(n_iterations=2, eval_every=2, n_seeds=2, dataset_scale=0.15)


def _spec(seed=0, dataset="youtube"):
    return TrialSpec(framework="uncertainty", dataset=dataset, seed=seed, protocol=FAST)


class TestPathResolution:
    def test_directory_location_gets_a_database_file_inside(self, tmp_path):
        broker = SqliteBroker(tmp_path / "queue")
        assert broker.path == tmp_path / "queue" / DB_FILENAME
        broker.enqueue(_spec())
        assert broker.path.is_file()

    @pytest.mark.parametrize("name", ["queue.sqlite3", "queue.sqlite", "queue.db"])
    def test_database_suffix_means_the_file_itself(self, tmp_path, name):
        broker = SqliteBroker(tmp_path / name)
        assert broker.path == tmp_path / name
        broker.enqueue(_spec())
        assert broker.path.is_file()
        assert not (tmp_path / name / DB_FILENAME).exists()

    def test_location_property_names_the_database(self, tmp_path):
        broker = SqliteBroker(tmp_path / "queue")
        assert broker.location == broker.path


class TestSchema:
    def test_wal_mode_and_schema_version_are_set(self, tmp_path):
        broker = SqliteBroker(tmp_path / "queue")
        broker.enqueue(_spec())
        conn = sqlite3.connect(str(broker.path))
        try:
            assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
            assert conn.execute("PRAGMA user_version").fetchone()[0] >= 1
            tables = {
                row[0]
                for row in conn.execute(
                    "SELECT name FROM sqlite_master WHERE type='table'"
                )
            }
            assert {"tasks", "failures"} <= tables
        finally:
            conn.close()

    def test_close_then_reuse_reopens_lazily(self, tmp_path):
        broker = SqliteBroker(tmp_path / "queue")
        broker.enqueue(_spec(seed=0))
        broker.close()
        assert broker.enqueue(_spec(seed=1))
        assert broker.counts()["tasks"] == 2

    def test_constructor_validates_arguments(self, tmp_path):
        with pytest.raises(ValueError, match="lease_ttl"):
            SqliteBroker(tmp_path, lease_ttl=0)
        with pytest.raises(ValueError, match="shard_by"):
            SqliteBroker(tmp_path, shard_by="zodiac")
        with pytest.raises(ValueError, match="scan_order"):
            SqliteBroker(tmp_path, scan_order="chaotic")


class TestCorruptRows:
    def _corrupt_row(self, broker, key):
        with broker._tx() as conn:
            conn.execute(
                "UPDATE tasks SET spec = ? WHERE key = ?",
                (b"not a pickle", key),
            )

    def test_unpicklable_spec_is_quarantined_not_served(self, tmp_path):
        broker = SqliteBroker(tmp_path / "queue", scan_order="sorted")
        good, bad = _spec(seed=0), _spec(seed=1)
        broker.enqueue_batch([good, bad])
        self._corrupt_row(broker, bad.key)
        leases = broker.lease_batch("w", limit=8)
        assert [lease.key for lease in leases] == [good.key]
        counts = broker.counts()
        assert counts["corrupt"] == 1 and counts["leases"] == 1

    def test_reenqueue_overwrites_a_quarantined_row(self, tmp_path):
        broker = SqliteBroker(tmp_path / "queue")
        spec = _spec()
        broker.enqueue(spec)
        self._corrupt_row(broker, spec.key)
        broker.lease_batch("w")  # trips the quarantine
        assert broker.counts()["corrupt"] == 1
        assert broker.enqueue(spec)  # self-heal: overwrite with a fresh copy
        assert broker.counts() == {"tasks": 1, "leases": 0, "failed": 0, "corrupt": 0}
        (lease,) = broker.lease_batch("w")
        assert lease.spec == spec


class TestDeterministicScan:
    def test_sorted_scan_order_claims_the_smallest_keys(self, tmp_path):
        specs = [_spec(seed=seed) for seed in range(5)]
        broker = SqliteBroker(tmp_path / "queue", scan_order="sorted")
        broker.enqueue_batch(specs)
        # Sorted order pins *which* rows a partial claim takes (RETURNING
        # order is unspecified), which is what deterministic tests need.
        claimed = {lease.key for lease in broker.lease_batch("w", limit=2)}
        assert claimed == set(sorted(spec.key for spec in specs)[:2])


class TestStats:
    def test_counters_track_transactions_and_claims(self, tmp_path):
        broker = SqliteBroker(tmp_path / "queue")
        broker.enqueue_batch([_spec(seed=seed) for seed in range(4)])
        assert broker.stats.transactions == 1  # the whole batch in one tx
        leases = broker.lease_batch("w", limit=4)
        assert broker.stats.batches == 1
        assert broker.stats.claims == 4
        assert broker.stats.transactions == 2
        assert broker.stats.transactions_per_claim() == pytest.approx(0.5)
        for lease in leases:
            broker.complete(lease)
        assert broker.stats.transactions == 6

    def test_reads_do_not_count_as_transactions(self, tmp_path):
        broker = SqliteBroker(tmp_path / "queue")
        broker.enqueue(_spec())
        before = broker.stats.transactions
        broker.counts()
        broker.backlog()
        assert broker.stats.transactions == before
        assert broker.stats.queries >= 2


class TestSpecRoundTrip:
    def test_spec_survives_pickling_through_the_row(self, tmp_path):
        broker = SqliteBroker(tmp_path / "queue")
        spec = _spec(seed=7)
        broker.enqueue(spec)
        (lease,) = broker.lease_batch("w")
        assert lease.spec == spec
        assert lease.spec.key == spec.key
        # The blob is a plain pickle: a different process (worker) can load it.
        assert isinstance(pickle.loads(pickle.dumps(lease.spec)), TrialSpec)
