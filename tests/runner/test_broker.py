"""Tests for the distributed backend: spool broker, worker daemon, engine path.

Three layers, cheapest first:

* unit tests of the lease protocol (atomicity, expiry, failure logs) driven
  entirely in-process;
* worker-loop tests calling :func:`repro.runner.worker.run_worker` directly;
* integration tests running real ``python -m repro.runner.worker``
  subprocesses against a grid submitted with
  ``ExecutionConfig(mode="distributed")``, including the
  dead-worker/lease-re-release recovery path and byte-identity with the
  serial engine.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.experiments import EvaluationProtocol
from repro.runner import (
    ExecutionConfig,
    GridJob,
    RemoteTrialError,
    ResultCache,
    SpoolBroker,
    SpoolTimeout,
    TrialSpec,
    expand_jobs,
    last_report,
    run_experiment_grid,
)
from repro.runner.worker import run_worker

FAST = EvaluationProtocol(n_iterations=2, eval_every=2, n_seeds=2, dataset_scale=0.15)


def _spec(seed=0, framework="uncertainty", dataset="youtube"):
    return TrialSpec(framework=framework, dataset=dataset, seed=seed, protocol=FAST)


def _grid_jobs():
    return [
        GridJob(key="uncertainty", framework="uncertainty", dataset="youtube"),
        GridJob(key="nemo", framework="nemo", dataset="youtube"),
    ]


def _backdate(path, seconds=3600):
    stamp = path.stat().st_mtime - seconds
    os.utime(path, (stamp, stamp))


def _spawn_worker(subprocess_env, spool, cache_dir, *extra):
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.runner.worker",
            "--spool",
            str(spool),
            "--cache-dir",
            str(cache_dir),
            "--idle-timeout",
            "10",
            "--quiet",
            *extra,
        ],
        env=subprocess_env,
        stderr=subprocess.DEVNULL,
    )


class TestLeaseProtocol:
    def test_enqueue_creates_one_task_per_key(self, tmp_path):
        broker = SpoolBroker(tmp_path)
        spec = _spec()
        assert broker.enqueue(spec) is True
        assert broker.enqueue(spec) is False  # idempotent: same content key
        assert broker.counts() == {"tasks": 1, "leases": 0, "failed": 0, "corrupt": 0}

    def test_lease_is_exclusive_and_round_trips_the_spec(self, tmp_path):
        broker = SpoolBroker(tmp_path)
        spec = _spec()
        broker.enqueue(spec)
        lease = broker.lease_next("w1")
        assert lease is not None
        assert lease.key == spec.key
        assert lease.spec == spec
        assert broker.lease_next("w2") is None  # claimed: nothing left
        broker.complete(lease)
        assert broker.counts() == {"tasks": 0, "leases": 0, "failed": 0, "corrupt": 0}

    def test_racing_leases_have_exactly_one_winner(self, tmp_path):
        broker = SpoolBroker(tmp_path)
        broker.enqueue(_spec())
        barrier = threading.Barrier(8)

        def claim():
            barrier.wait()
            return broker.lease_next()

        with ThreadPoolExecutor(max_workers=8) as pool:
            wins = [lease for lease in pool.map(lambda _: claim(), range(8)) if lease]
        assert len(wins) == 1

    def test_enqueue_skips_actively_leased_trials(self, tmp_path):
        broker = SpoolBroker(tmp_path)
        spec = _spec()
        broker.enqueue(spec)
        broker.lease_next()
        assert broker.enqueue(spec) is False  # a worker is on it
        assert broker.counts()["tasks"] == 0

    def test_release_reoffers_the_trial(self, tmp_path):
        broker = SpoolBroker(tmp_path)
        spec = _spec()
        broker.enqueue(spec)
        lease = broker.lease_next()
        broker.release(lease)
        assert broker.counts() == {"tasks": 1, "leases": 0, "failed": 0, "corrupt": 0}
        assert broker.lease_next().key == spec.key

    def test_corrupt_task_file_is_quarantined_next_to_the_task(self, tmp_path):
        broker = SpoolBroker(tmp_path)
        spec = _spec()
        broker.enqueue(spec)
        broker.task_path(spec).write_bytes(b"not a pickle")
        assert broker.lease_next() is None
        # Quarantined as <key>.task.corrupt in the task's home shard — NOT
        # inside leases/, where nothing ever cleans it up and post-mortems
        # would conflate it with a real claim.
        quarantine = broker.task_path(spec).with_name(f"{spec.key}.task.corrupt")
        assert quarantine.exists()
        assert not list(broker.leases_dir.glob("*"))
        assert broker.counts() == {"tasks": 0, "leases": 0, "failed": 0, "corrupt": 1}

    def test_quarantine_survives_a_concurrently_pruned_shard_dir(
        self, tmp_path, monkeypatch
    ):
        """Claiming the last (corrupt) task empties its shard; if a sweep
        prunes the directory before the quarantine rename lands, the rename
        must recreate it — otherwise the garbage lingers in leases/ looking
        like a live claim."""
        import shutil

        broker = SpoolBroker(tmp_path)
        spec = _spec()
        broker.enqueue(spec)
        broker.task_path(spec).write_bytes(b"not a pickle")
        shard_dir = broker.tasks_dir / "youtube"
        real_replace = os.replace
        raced = []

        def racing_replace(src, dst):
            if not raced and str(dst).endswith(".task.corrupt"):
                raced.append(True)
                shutil.rmtree(shard_dir)  # the concurrent sweep's rmdir
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", racing_replace)
        assert broker.lease_next("w1") is None
        assert (shard_dir / f"{spec.key}.task.corrupt").exists()
        assert not list(broker.leases_dir.glob("*"))
        assert broker.counts()["corrupt"] == 1

    def test_enqueue_keeps_the_failure_log_when_the_write_fails(
        self, tmp_path, monkeypatch
    ):
        """Clearing the log is conditional on the retry task actually
        landing: a failed write must not discard the failure evidence."""
        broker = SpoolBroker(tmp_path)
        spec = _spec()
        broker._ensure_dirs()
        broker.failure_path(spec.key).write_text(
            json.dumps({"key": spec.key, "worker": "w1", "error": "boom", "traceback": "tb"})
        )

        def failing_write(path, data):
            raise OSError("disk full")

        monkeypatch.setattr("repro.runner.broker.atomic_write_bytes", failing_write)
        with pytest.raises(OSError):
            broker.enqueue(spec)
        assert broker.failure_for(spec.key) is not None  # evidence preserved

    def test_enqueue_leaves_a_leased_trials_failure_log_alone(self, tmp_path):
        """Two-submitter regression: enqueue must only clear a failure log
        when it actually (re-)writes a task file — not for a currently
        leased, currently failing trial whose log the first submitter's
        wait() is about to raise."""
        broker = SpoolBroker(tmp_path)
        spec = _spec()
        broker.enqueue(spec)
        lease = broker.lease_next("w1")  # a worker holds the trial...
        broker.failure_path(spec.key).write_text(
            json.dumps({"key": spec.key, "worker": "w1", "error": "boom", "traceback": "tb"})
        )  # ...and its failure log has just landed
        # A second submitter re-offers the same trial: nothing to write
        # (it is leased), so nothing may be cleared either.
        assert SpoolBroker(tmp_path).enqueue(spec) is False
        assert broker.failure_for(spec.key) is not None
        broker.complete(lease)
        with pytest.raises(RemoteTrialError, match="boom"):
            broker.wait([spec], ResultCache(tmp_path / "cache"), timeout=5)
        # Once nothing is pending/leased, enqueue IS the retry path and
        # clears the stale log along with writing the fresh task file.
        assert broker.enqueue(spec) is True
        assert broker.failure_for(spec.key) is None


class TestShardedSpool:
    def test_enqueue_files_tasks_under_the_dataset_shard(self, tmp_path):
        broker = SpoolBroker(tmp_path)
        spec = _spec()
        assert broker.enqueue(spec) is True
        task = broker.tasks_dir / "youtube" / f"{spec.key}.task"
        assert task.exists() and task == broker.task_path(spec)
        assert broker.counts()["tasks"] == 1

    def test_shard_policies(self, tmp_path):
        spec = _spec()
        by_hash = SpoolBroker(tmp_path / "h", shard_by="hash")
        assert by_hash.task_path(spec).parent.name == spec.key[:2]
        flat = SpoolBroker(tmp_path / "f", shard_by="none")
        assert flat.task_path(spec).parent == flat.tasks_dir
        # A raw key carries no dataset: dataset sharding falls back to hash.
        sharded = SpoolBroker(tmp_path / "d")
        assert sharded.shard_for(spec.key) == spec.key[:2]
        with pytest.raises(ValueError, match="shard_by"):
            SpoolBroker(tmp_path, shard_by="bogus")

    def test_lease_records_its_shard_and_release_restores_it(self, tmp_path):
        broker = SpoolBroker(tmp_path)
        spec = _spec()
        broker.enqueue(spec)
        lease = broker.lease_next("w1")
        assert lease.lease_path.name.split(".")[1] == "youtube"
        broker.release(lease)
        assert (broker.tasks_dir / "youtube" / f"{spec.key}.task").exists()

    def test_lease_batch_caps_and_drains_exactly_once(self, tmp_path):
        broker = SpoolBroker(tmp_path)
        for seed in range(5):
            broker.enqueue(_spec(seed=seed, dataset="youtube"))
        for seed in range(3):
            broker.enqueue(_spec(seed=seed, dataset="imdb"))
        claimed: list[str] = []
        while True:
            batch = broker.lease_batch("w1", limit=4)
            if not batch:
                break
            assert len(batch) <= 4  # the cap is never exceeded
            claimed.extend(lease.key for lease in batch)
            for lease in batch:
                broker.complete(lease)
        assert len(claimed) == len(set(claimed)) == 8

    def test_drained_shard_directories_are_removed(self, tmp_path):
        """Sweeping a drained shard prunes its directory, so idle polling on
        a finished grid goes back to one listing per poll."""
        broker = SpoolBroker(tmp_path)
        spec = _spec()
        broker.enqueue(spec)
        lease = broker.lease_next("w1")
        broker.complete(lease)
        assert broker.lease_batch("w1", limit=1) == []  # probes + prunes
        assert not (broker.tasks_dir / "youtube").exists()
        # ...and an enqueue simply recreates the shard.
        assert broker.enqueue(spec) is True
        assert broker.task_path(spec).exists()

    def test_consecutive_batches_prefer_the_same_shard(self, tmp_path):
        """Dataset affinity: a worker that claimed from one shard keeps
        draining it before moving on (its generated corpus stays warm)."""
        broker = SpoolBroker(tmp_path)
        for seed in range(6):
            broker.enqueue(_spec(seed=seed, dataset="youtube"))
            broker.enqueue(_spec(seed=seed, dataset="imdb"))
        first = broker.lease_batch("w1", limit=2)
        first_shard = first[0].lease_path.name.split(".")[1]
        for _ in range(2):  # the shard still has tasks: stick to it
            batch = broker.lease_batch("w1", limit=2)
            assert {l.lease_path.name.split(".")[1] for l in batch} == {first_shard}

    def test_enqueue_sees_tasks_filed_under_any_shard_policy(self, tmp_path):
        """Submitters with different shard_by settings must still write one
        task file per content key, not one per policy."""
        spec = _spec()
        assert SpoolBroker(tmp_path, shard_by="hash").enqueue(spec) is True
        for policy in ("dataset", "hash", "none"):
            assert SpoolBroker(tmp_path, shard_by=policy).enqueue(spec) is False
        assert SpoolBroker(tmp_path).counts()["tasks"] == 1

    def test_legacy_flat_spool_round_trips(self, tmp_path):
        """A PR 4 unsharded spool still drains, and its tasks keep the flat
        location and legacy lease-name format through expiry and release."""
        legacy = SpoolBroker(tmp_path, shard_by="none", lease_ttl=5)
        spec = _spec()
        legacy.enqueue(spec)
        flat_task = legacy.tasks_dir / f"{spec.key}.task"
        assert flat_task.exists()
        sharded = SpoolBroker(tmp_path, lease_ttl=5)  # default dataset sharding
        assert sharded.enqueue(spec) is False  # pending flat counts as pending
        lease = sharded.lease_next("w1")
        assert lease is not None and lease.key == spec.key
        assert len(lease.lease_path.name.split(".")) == 4  # legacy claim name
        _backdate(lease.lease_path)
        assert sharded.release_expired() == 1
        assert flat_task.exists()  # restored flat, not migrated into a shard
        release = sharded.lease_next("w2")
        sharded.release(release)
        assert flat_task.exists()

    def test_stats_count_listings_and_renames(self, tmp_path):
        broker = SpoolBroker(tmp_path)
        for seed in range(4):
            broker.enqueue(_spec(seed=seed))
        before = broker.stats.listings
        batch = broker.lease_batch("w1", limit=4)
        assert len(batch) == 4
        assert broker.stats.claims == 4
        assert broker.stats.rename_attempts == 4
        assert broker.stats.failed_renames == 0
        # One batch = one tasks/ listing + one shard listing.
        assert broker.stats.listings - before == 2
        assert broker.stats.renames_per_claim() == 1.0


class TestContention:
    N_WORKERS = 8

    def _drain(self, spool, specs, shard_by, scan_order, batch):
        submitter = SpoolBroker(spool, shard_by=shard_by)
        for spec in specs:
            assert submitter.enqueue(spec)
        brokers = [
            SpoolBroker(spool, shard_by=shard_by, scan_order=scan_order)
            for _ in range(self.N_WORKERS)
        ]
        barrier = threading.Barrier(self.N_WORKERS)
        claimed: list[list[str]] = [[] for _ in range(self.N_WORKERS)]
        batch_sizes: list[int] = []

        def work(i):
            barrier.wait()
            while True:
                leases = brokers[i].lease_batch(f"w{i}", limit=batch)
                if not leases:
                    return
                batch_sizes.append(len(leases))
                for lease in leases:
                    claimed[i].append(lease.key)
                    brokers[i].complete(lease)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(self.N_WORKERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert max(batch_sizes) <= batch  # the cap is never exceeded
        keys = [key for per_worker in claimed for key in per_worker]
        failed = sum(broker.stats.failed_renames for broker in brokers)
        return keys, failed

    def test_sharded_batched_race_is_exactly_once_and_less_contended(self, tmp_path):
        """8 racing workers over a 2-shard spool: every task executes exactly
        once, and the sharded+batched layout loses strictly fewer claim
        renames than the flat sorted-scan baseline."""
        specs = [
            _spec(seed=seed, dataset=dataset)
            for seed in range(40)
            for dataset in ("youtube", "imdb")
        ]
        expected = sorted(spec.key for spec in specs)

        flat_keys, flat_failed = self._drain(
            tmp_path / "flat", specs, shard_by="none", scan_order="sorted", batch=1
        )
        sharded_keys, sharded_failed = self._drain(
            tmp_path / "sharded", specs, shard_by="dataset", scan_order="random", batch=8
        )
        assert sorted(flat_keys) == expected  # exactly once, nothing lost
        assert sorted(sharded_keys) == expected
        assert sharded_failed < flat_failed

    def test_interrupted_worker_releases_its_unstarted_batch(self, tmp_path, monkeypatch):
        broker = SpoolBroker(tmp_path / "spool")
        for seed in range(4):
            broker.enqueue(_spec(seed=seed))

        def interrupted_trial(spec):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.runner.worker.run_trial", interrupted_trial)
        with pytest.raises(KeyboardInterrupt):
            run_worker(tmp_path / "spool", tmp_path / "cache", claim_batch=4, quiet=True)
        # The interrupted trial AND the claimed-but-unstarted remainder of
        # the batch are all re-offered; nothing is left leased.
        assert broker.counts() == {"tasks": 4, "leases": 0, "failed": 0, "corrupt": 0}


class TestCrashRecovery:
    def test_expired_lease_is_reoffered(self, tmp_path):
        broker = SpoolBroker(tmp_path, lease_ttl=5)
        spec = _spec()
        broker.enqueue(spec)
        lease = broker.lease_next("doomed")
        _backdate(lease.lease_path)
        assert broker.release_expired() == 1
        assert broker.counts()["tasks"] == 1
        assert broker.lease_next().key == spec.key

    def test_fresh_lease_survives_the_sweep(self, tmp_path):
        broker = SpoolBroker(tmp_path, lease_ttl=3600)
        broker.enqueue(_spec())
        broker.lease_next()
        assert broker.release_expired() == 0
        assert broker.counts()["leases"] == 1

    def test_sweep_is_scoped_to_the_submitters_keys(self, tmp_path):
        broker = SpoolBroker(tmp_path, lease_ttl=5)
        mine, theirs = _spec(seed=1), _spec(seed=2)
        for spec in (mine, theirs):
            broker.enqueue(spec)
            _backdate(broker.lease_next().lease_path)
        assert broker.release_expired(keys=[mine.key]) == 1
        assert broker.counts() == {"tasks": 1, "leases": 1, "failed": 0, "corrupt": 0}

    def test_expired_sharded_lease_is_restored_to_its_shard(self, tmp_path):
        broker = SpoolBroker(tmp_path, lease_ttl=5)
        spec = _spec()
        broker.enqueue(spec)
        lease = broker.lease_next("doomed")
        _backdate(lease.lease_path)
        assert broker.release_expired() == 1
        # Re-offered into tasks/youtube/, not some other location: crash
        # recovery preserves the task's dataset affinity.
        assert (broker.tasks_dir / "youtube" / f"{spec.key}.task").exists()

    def test_heartbeat_keeps_a_lease_alive(self, tmp_path):
        broker = SpoolBroker(tmp_path, lease_ttl=5)
        broker.enqueue(_spec())
        lease = broker.lease_next()
        _backdate(lease.lease_path)
        broker.heartbeat(lease)  # what the worker's background thread does
        assert broker.release_expired() == 0

    def test_dropping_an_already_reoffered_lease_is_not_a_release(self, tmp_path):
        """Two submitters policing one spool must not double-count a re-offer."""
        broker = SpoolBroker(tmp_path, lease_ttl=5)
        spec = _spec()
        broker.enqueue(spec)
        lease = broker.lease_next("doomed")
        _backdate(lease.lease_path)
        assert broker.release_expired() == 1  # submitter 1 re-offers
        # Simulate submitter 2's sweep finding the same expired lease still
        # on disk next to the re-offered task (the unlink raced).
        lease.lease_path.write_bytes(b"stale")
        _backdate(lease.lease_path)
        assert broker.release_expired() == 0  # cleanup, not a second re-offer
        assert broker.counts() == {"tasks": 1, "leases": 0, "failed": 0, "corrupt": 0}

    def test_revoked_claim_cannot_write_a_failure_log(self, tmp_path):
        """A stale holder's local error must not abort the healthy retry."""
        broker = SpoolBroker(tmp_path, lease_ttl=5)
        spec = _spec()
        broker.enqueue(spec)
        stale = broker.lease_next("stalled-worker")
        _backdate(stale.lease_path)
        broker.release_expired()  # claim revoked, trial re-offered
        fresh = broker.lease_next("healthy-worker")
        assert fresh is not None and fresh.lease_path != stale.lease_path
        broker.fail(stale, "stalled-worker", RuntimeError("local OOM"), "tb")
        assert broker.failure_for(spec.key) is None  # log suppressed
        assert fresh.lease_path.exists()  # the live claim is untouched
        broker.complete(stale)  # ownership also protects complete()
        assert fresh.lease_path.exists()

    def test_wait_timeout_extends_while_a_lease_is_fresh(self, tmp_path):
        """The timeout detects abandonment, not long trials."""
        import time

        from repro.runner import ResultCache

        broker = SpoolBroker(tmp_path / "spool", lease_ttl=1.0)
        spec = _spec()
        broker.enqueue(spec)
        broker.lease_next("slow-but-alive")  # fresh mtime, never heartbeats
        start = time.monotonic()
        with pytest.raises(SpoolTimeout):
            broker.wait([spec], ResultCache(tmp_path / "cache"), timeout=0.4)
        # The first deadline (0.4s) was extended because the lease was
        # fresh; only after the TTL expired it (>= 1s) could abandonment be
        # declared.
        assert time.monotonic() - start >= 1.0


class TestWorkerLoop:
    def test_worker_executes_and_caches(self, tmp_path):
        broker = SpoolBroker(tmp_path / "spool")
        cache = ResultCache(tmp_path / "cache")
        specs = [_spec(seed=s) for s in (1, 2)]
        for spec in specs:
            broker.enqueue(spec)
        executed = run_worker(
            tmp_path / "spool", tmp_path / "cache", idle_timeout=0.05, quiet=True
        )
        assert executed == 2
        assert all(cache.get(spec) is not None for spec in specs)
        assert broker.counts() == {"tasks": 0, "leases": 0, "failed": 0, "corrupt": 0}

    def test_worker_respects_max_trials(self, tmp_path):
        broker = SpoolBroker(tmp_path / "spool")
        for seed in (1, 2, 3):
            broker.enqueue(_spec(seed=seed))
        executed = run_worker(
            tmp_path / "spool", tmp_path / "cache", max_trials=2, quiet=True
        )
        assert executed == 2
        assert broker.counts()["tasks"] == 1

    def test_worker_skips_already_cached_trials(self, tmp_path):
        broker = SpoolBroker(tmp_path / "spool")
        cache = ResultCache(tmp_path / "cache")
        spec = _spec()
        from repro.runner import run_trial

        cache.put(spec, run_trial(spec))
        broker.enqueue(spec)
        executed = run_worker(
            tmp_path / "spool", tmp_path / "cache", idle_timeout=0.05, quiet=True
        )
        assert executed == 0  # served by content addressing, not re-executed
        assert broker.counts()["tasks"] == 0

    def test_failing_trial_writes_a_failure_log(self, tmp_path):
        broker = SpoolBroker(tmp_path / "spool")
        bad = _spec(dataset="no-such-dataset")
        broker.enqueue(bad)
        executed = run_worker(
            tmp_path / "spool",
            tmp_path / "cache",
            idle_timeout=0.05,
            worker_id="w-under-test",
            quiet=True,
        )
        assert executed == 0
        failure = broker.failure_for(bad.key)
        assert failure is not None
        assert failure["worker"] == "w-under-test"
        assert "no-such-dataset" in failure["traceback"]
        # The submitter surfaces the remote traceback.
        with pytest.raises(RemoteTrialError, match="no-such-dataset"):
            broker.wait([bad], ResultCache(tmp_path / "cache"), timeout=5)

    def test_error_escaping_the_batch_loop_releases_and_stops_heartbeating(
        self, tmp_path, monkeypatch
    ):
        """If even the failure-log write blows up, the worker must not leak
        its heartbeat thread — a leaked heartbeat keeps the batch's leases
        eternally fresh and defeats the submitter's abandonment timeout."""
        broker = SpoolBroker(tmp_path / "spool")
        for seed in range(3):
            broker.enqueue(_spec(seed=seed))

        def bad_trial(spec):
            raise ValueError("trial blew up")

        def bad_fail(lease, worker_id, error, traceback_text):
            raise OSError("failed/ is on a full disk")

        monkeypatch.setattr("repro.runner.worker.run_trial", bad_trial)
        monkeypatch.setattr(SpoolBroker, "fail", staticmethod(bad_fail))
        threads_before = set(threading.enumerate())
        with pytest.raises(OSError, match="full disk"):
            run_worker(tmp_path / "spool", tmp_path / "cache", claim_batch=3, quiet=True)
        # Everything claimed was re-offered and nothing is still heartbeating.
        assert broker.counts()["tasks"] == 3
        assert broker.counts()["leases"] == 0
        leaked = [t for t in threading.enumerate() if t not in threads_before]
        assert leaked == []  # the heartbeat thread was stopped and joined

    def test_idle_clock_starts_after_the_batch_finishes(self, tmp_path, monkeypatch):
        """A batch longer than idle_timeout must not make the first empty
        poll after it count as idle_timeout seconds of idleness — the
        worker has to keep serving the spool for idle_timeout AFTER its
        last batch."""
        from repro.runner import run_trial

        spec = _spec()
        broker = SpoolBroker(tmp_path / "spool")
        broker.enqueue(spec)
        history = run_trial(spec)

        def slow_trial(s):
            time.sleep(0.5)
            return history

        monkeypatch.setattr("repro.runner.worker.run_trial", slow_trial)
        started = time.monotonic()
        executed = run_worker(
            tmp_path / "spool", tmp_path / "cache", idle_timeout=0.3, quiet=True
        )
        elapsed = time.monotonic() - started
        assert executed == 1
        # trial (0.5s) + a full idle window (0.3s) before giving up; the
        # pre-fix worker exited right after the trial (elapsed ~0.5s).
        assert elapsed >= 0.75

    def test_slow_result_publish_keeps_the_lease_heartbeating(self, tmp_path, monkeypatch):
        """A cache.put slower than the TTL (NFS stall, huge history) must not
        let the lease expire: the completed trial would be re-offered and
        re-executed by another worker."""
        from repro.runner import run_trial

        spool, cache_dir = tmp_path / "spool", tmp_path / "cache"
        spec = _spec()
        broker = SpoolBroker(spool, lease_ttl=1.0)
        broker.enqueue(spec)
        history = run_trial(spec)
        monkeypatch.setattr("repro.runner.worker.run_trial", lambda s: history)

        real_put = ResultCache.put

        def slow_put(self, key, value, wall_seconds=None):
            time.sleep(2.5)  # well past the 1.0s TTL
            return real_put(self, key, value, wall_seconds=wall_seconds)

        monkeypatch.setattr(ResultCache, "put", slow_put)
        released = []
        worker = threading.Thread(
            target=run_worker,
            args=(spool, cache_dir),
            kwargs={"max_trials": 1, "lease_ttl": 1.0, "quiet": True},
        )
        worker.start()
        deadline = time.monotonic() + 4.0
        while worker.is_alive() and time.monotonic() < deadline:
            released.append(broker.release_expired())
            time.sleep(0.2)
        worker.join(timeout=30)
        assert sum(released) == 0  # the heartbeat outlived the slow publish
        assert ResultCache(cache_dir).get(spec) is not None
        assert broker.counts() == {"tasks": 0, "leases": 0, "failed": 0, "corrupt": 0}

    def test_enqueue_clears_stale_failure_logs(self, tmp_path):
        broker = SpoolBroker(tmp_path / "spool")
        bad = _spec(dataset="no-such-dataset")
        broker.enqueue(bad)
        run_worker(tmp_path / "spool", tmp_path / "cache", idle_timeout=0.05, quiet=True)
        assert broker.failure_for(bad.key) is not None
        broker.enqueue(bad)  # the retry path after fixing the environment
        assert broker.failure_for(bad.key) is None
        assert broker.counts()["tasks"] == 1


class TestExecutionConfig:
    def test_distributed_requires_spool_and_cache(self, tmp_path):
        with pytest.raises(ValueError, match="spool_dir"):
            ExecutionConfig(mode="distributed", cache_dir=tmp_path)
        with pytest.raises(ValueError, match="cache_dir"):
            ExecutionConfig(mode="distributed", spool_dir=tmp_path)
        with pytest.raises(ValueError, match="cache_dir"):
            ExecutionConfig(
                mode="distributed", spool_dir=tmp_path, cache_dir=tmp_path, use_cache=False
            )

    def test_unknown_mode_and_preset_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            ExecutionConfig(mode="cluster")
        with pytest.raises(ValueError, match="preset"):
            ExecutionConfig.coerce("cluster")
        with pytest.raises(TypeError):
            ExecutionConfig.coerce(4)

    def test_string_presets(self, tmp_path, monkeypatch):
        assert ExecutionConfig.coerce(None) == ExecutionConfig()
        assert ExecutionConfig.coerce("serial").workers == 1
        assert ExecutionConfig.coerce("parallel").workers == 0
        monkeypatch.setenv("REPRO_SPOOL_DIR", str(tmp_path / "spool"))
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        coerced = ExecutionConfig.coerce("distributed")
        assert coerced.mode == "distributed"
        assert str(coerced.spool_dir) == str(tmp_path / "spool")

    def test_shard_and_claim_batch_knobs_validated(self, tmp_path):
        with pytest.raises(ValueError, match="shard_by"):
            ExecutionConfig(shard_by="bogus")
        with pytest.raises(ValueError, match="claim_batch"):
            ExecutionConfig(claim_batch=0)
        execution = ExecutionConfig(
            mode="distributed",
            spool_dir=tmp_path / "spool",
            cache_dir=tmp_path / "cache",
            shard_by="hash",
        )
        assert execution.broker().shard_by == "hash"

    def test_distributed_preset_reads_shard_and_batch_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPOOL_DIR", str(tmp_path / "spool"))
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_SPOOL_SHARD_BY", "hash")
        monkeypatch.setenv("REPRO_CLAIM_BATCH", "3")
        coerced = ExecutionConfig.coerce("distributed")
        assert coerced.shard_by == "hash"
        assert coerced.claim_batch == 3

    def test_wait_timeout_without_workers(self, tmp_path):
        execution = ExecutionConfig(
            mode="distributed",
            spool_dir=tmp_path / "spool",
            cache_dir=tmp_path / "cache",
            wait_timeout=0.3,
        )
        with pytest.raises(SpoolTimeout, match="workers running"):
            run_experiment_grid(_grid_jobs()[:1], FAST, execution)
        # The trials stayed enqueued for whenever workers do appear.
        assert SpoolBroker(tmp_path / "spool").counts()["tasks"] == FAST.n_seeds


class TestDistributedGrid:
    def test_matches_serial_run_with_two_worker_processes(self, tmp_path, subprocess_env):
        spool, cache_dir = tmp_path / "spool", tmp_path / "cache"
        workers = [_spawn_worker(subprocess_env, spool, cache_dir) for _ in range(2)]
        try:
            distributed = run_experiment_grid(
                _grid_jobs(),
                FAST,
                ExecutionConfig(
                    mode="distributed",
                    spool_dir=spool,
                    cache_dir=cache_dir,
                    wait_timeout=120,
                ),
            )
        finally:
            exit_codes = [worker.wait(timeout=60) for worker in workers]
        assert exit_codes == [0, 0]
        report = last_report()
        assert report.n_remote == 2 * FAST.n_seeds
        assert report.n_executed == 0
        assert (
            report.n_remote + report.n_cached + report.n_deduplicated == report.n_trials
        )

        serial = run_experiment_grid(_grid_jobs(), FAST, ExecutionConfig(workers=1))
        for key in serial:
            for ours, theirs in zip(serial[key].histories, distributed[key].histories):
                assert pickle.dumps(ours) == pickle.dumps(theirs)

    def test_dead_workers_trial_is_rereleased_and_completed(
        self, tmp_path, subprocess_env
    ):
        """Killing a worker mid-grid: its lease expires and another finishes."""
        spool, cache_dir = tmp_path / "spool", tmp_path / "cache"
        broker = SpoolBroker(spool, lease_ttl=1.0)
        jobs = _grid_jobs()[:1]
        specs = [spec for _, spec in expand_jobs(jobs, FAST)]
        # Simulate a worker that claimed a trial and was then SIGKILLed: the
        # lease exists, nobody heartbeats it, and its mtime is already old.
        broker.enqueue(specs[0])
        dead_lease = broker.lease_next("killed-mid-trial")
        assert dead_lease is not None
        _backdate(dead_lease.lease_path)

        live = _spawn_worker(subprocess_env, spool, cache_dir, "--lease-ttl", "1.0")
        try:
            results = run_experiment_grid(
                jobs,
                FAST,
                ExecutionConfig(
                    mode="distributed",
                    spool_dir=spool,
                    cache_dir=cache_dir,
                    lease_ttl=1.0,
                    wait_timeout=120,
                ),
            )
        finally:
            assert live.wait(timeout=60) == 0
        report = last_report()
        assert report.n_remote == FAST.n_seeds
        assert report.n_released >= 1  # crash recovery actually fired
        assert len(results[jobs[0].key].histories) == FAST.n_seeds

    def test_warm_rerun_is_served_from_cache_without_workers(self, tmp_path):
        spool, cache_dir = tmp_path / "spool", tmp_path / "cache"
        jobs = _grid_jobs()[:1]
        # Cold run: an in-thread worker drains the spool while we wait.
        worker = threading.Thread(
            target=run_worker,
            args=(spool, cache_dir),
            kwargs={"max_trials": FAST.n_seeds, "quiet": True},
        )
        worker.start()
        execution = ExecutionConfig(
            mode="distributed", spool_dir=spool, cache_dir=cache_dir, wait_timeout=120
        )
        try:
            cold = run_experiment_grid(jobs, FAST, execution)
        finally:
            worker.join(timeout=60)
        assert last_report().n_remote == FAST.n_seeds
        # Warm rerun: every trial is a cache hit; no worker needed, the
        # spool is never touched (wait_timeout would fire if it were).
        warm = run_experiment_grid(jobs, FAST, execution)
        report = last_report()
        assert report.n_cached == FAST.n_seeds and report.n_remote == 0
        for ours, theirs in zip(
            cold[jobs[0].key].histories, warm[jobs[0].key].histories
        ):
            assert pickle.dumps(ours) == pickle.dumps(theirs)

    def test_legacy_unsharded_spool_drains_with_byte_identity(self, tmp_path):
        """A spool pre-populated in the PR 4 flat layout still drains through
        the sharded engine — no duplicate enqueues, identical results."""
        spool, cache_dir = tmp_path / "spool", tmp_path / "cache"
        jobs = _grid_jobs()[:1]
        specs = [spec for _, spec in expand_jobs(jobs, FAST)]
        legacy = SpoolBroker(spool, shard_by="none")
        for spec in specs:
            assert legacy.enqueue(spec) is True
            assert (spool / "tasks" / f"{spec.key}.task").exists()
        worker = threading.Thread(
            target=run_worker,
            args=(spool, cache_dir),
            kwargs={"max_trials": len(specs), "quiet": True},
        )
        worker.start()
        try:
            distributed = run_experiment_grid(
                jobs,
                FAST,
                ExecutionConfig(
                    mode="distributed",
                    spool_dir=spool,
                    cache_dir=cache_dir,
                    wait_timeout=120,
                ),
            )
        finally:
            worker.join(timeout=60)
        assert last_report().n_remote == len(specs)
        assert SpoolBroker(spool).counts()["tasks"] == 0  # drained, no dupes
        serial = run_experiment_grid(jobs, FAST, ExecutionConfig(workers=1))
        for ours, theirs in zip(
            serial[jobs[0].key].histories, distributed[jobs[0].key].histories
        ):
            assert pickle.dumps(ours) == pickle.dumps(theirs)

    def test_vanished_task_is_reenqueued_by_the_submitter(self, tmp_path):
        spool, cache_dir = tmp_path / "spool", tmp_path / "cache"
        spec = _spec()
        broker = SpoolBroker(spool)
        broker.enqueue(spec)
        broker.task_path(spec).unlink()  # spool wiped under us
        with pytest.raises(SpoolTimeout):
            broker.wait([spec], ResultCache(cache_dir), timeout=0.3)
        assert broker.counts()["tasks"] == 1  # self-healed before timing out
