"""Tests for the distributed backend: spool broker, worker daemon, engine path.

Three layers, cheapest first:

* unit tests of the lease protocol (atomicity, expiry, failure logs) driven
  entirely in-process;
* worker-loop tests calling :func:`repro.runner.worker.run_worker` directly;
* integration tests running real ``python -m repro.runner.worker``
  subprocesses against a grid submitted with
  ``ExecutionConfig(mode="distributed")``, including the
  dead-worker/lease-re-release recovery path and byte-identity with the
  serial engine.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.experiments import EvaluationProtocol
from repro.runner import (
    ExecutionConfig,
    GridJob,
    RemoteTrialError,
    ResultCache,
    SpoolBroker,
    SpoolTimeout,
    TrialSpec,
    expand_jobs,
    last_report,
    run_experiment_grid,
)
from repro.runner.worker import run_worker

FAST = EvaluationProtocol(n_iterations=2, eval_every=2, n_seeds=2, dataset_scale=0.15)


def _spec(seed=0, framework="uncertainty", dataset="youtube"):
    return TrialSpec(framework=framework, dataset=dataset, seed=seed, protocol=FAST)


def _grid_jobs():
    return [
        GridJob(key="uncertainty", framework="uncertainty", dataset="youtube"),
        GridJob(key="nemo", framework="nemo", dataset="youtube"),
    ]


def _backdate(path, seconds=3600):
    stamp = path.stat().st_mtime - seconds
    os.utime(path, (stamp, stamp))


def _spawn_worker(subprocess_env, spool, cache_dir, *extra):
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.runner.worker",
            "--spool",
            str(spool),
            "--cache-dir",
            str(cache_dir),
            "--idle-timeout",
            "10",
            "--quiet",
            *extra,
        ],
        env=subprocess_env,
        stderr=subprocess.DEVNULL,
    )


class TestLeaseProtocol:
    def test_enqueue_creates_one_task_per_key(self, tmp_path):
        broker = SpoolBroker(tmp_path)
        spec = _spec()
        assert broker.enqueue(spec) is True
        assert broker.enqueue(spec) is False  # idempotent: same content key
        assert broker.counts() == {"tasks": 1, "leases": 0, "failed": 0}

    def test_lease_is_exclusive_and_round_trips_the_spec(self, tmp_path):
        broker = SpoolBroker(tmp_path)
        spec = _spec()
        broker.enqueue(spec)
        lease = broker.lease_next("w1")
        assert lease is not None
        assert lease.key == spec.key
        assert lease.spec == spec
        assert broker.lease_next("w2") is None  # claimed: nothing left
        broker.complete(lease)
        assert broker.counts() == {"tasks": 0, "leases": 0, "failed": 0}

    def test_racing_leases_have_exactly_one_winner(self, tmp_path):
        broker = SpoolBroker(tmp_path)
        broker.enqueue(_spec())
        barrier = threading.Barrier(8)

        def claim():
            barrier.wait()
            return broker.lease_next()

        with ThreadPoolExecutor(max_workers=8) as pool:
            wins = [lease for lease in pool.map(lambda _: claim(), range(8)) if lease]
        assert len(wins) == 1

    def test_enqueue_skips_actively_leased_trials(self, tmp_path):
        broker = SpoolBroker(tmp_path)
        spec = _spec()
        broker.enqueue(spec)
        broker.lease_next()
        assert broker.enqueue(spec) is False  # a worker is on it
        assert broker.counts()["tasks"] == 0

    def test_release_reoffers_the_trial(self, tmp_path):
        broker = SpoolBroker(tmp_path)
        spec = _spec()
        broker.enqueue(spec)
        lease = broker.lease_next()
        broker.release(lease)
        assert broker.counts() == {"tasks": 1, "leases": 0, "failed": 0}
        assert broker.lease_next().key == spec.key

    def test_corrupt_task_file_is_quarantined(self, tmp_path):
        broker = SpoolBroker(tmp_path)
        broker.enqueue(_spec())
        broker.task_path(_spec()).write_bytes(b"not a pickle")
        assert broker.lease_next() is None
        corrupt = list(broker.leases_dir.glob("*.corrupt"))
        assert len(corrupt) == 1
        assert broker.counts() == {"tasks": 0, "leases": 0, "failed": 0}


class TestCrashRecovery:
    def test_expired_lease_is_reoffered(self, tmp_path):
        broker = SpoolBroker(tmp_path, lease_ttl=5)
        spec = _spec()
        broker.enqueue(spec)
        lease = broker.lease_next("doomed")
        _backdate(lease.lease_path)
        assert broker.release_expired() == 1
        assert broker.counts()["tasks"] == 1
        assert broker.lease_next().key == spec.key

    def test_fresh_lease_survives_the_sweep(self, tmp_path):
        broker = SpoolBroker(tmp_path, lease_ttl=3600)
        broker.enqueue(_spec())
        broker.lease_next()
        assert broker.release_expired() == 0
        assert broker.counts()["leases"] == 1

    def test_sweep_is_scoped_to_the_submitters_keys(self, tmp_path):
        broker = SpoolBroker(tmp_path, lease_ttl=5)
        mine, theirs = _spec(seed=1), _spec(seed=2)
        for spec in (mine, theirs):
            broker.enqueue(spec)
            _backdate(broker.lease_next().lease_path)
        assert broker.release_expired(keys=[mine.key]) == 1
        assert broker.counts() == {"tasks": 1, "leases": 1, "failed": 0}

    def test_heartbeat_keeps_a_lease_alive(self, tmp_path):
        broker = SpoolBroker(tmp_path, lease_ttl=5)
        broker.enqueue(_spec())
        lease = broker.lease_next()
        _backdate(lease.lease_path)
        broker.heartbeat(lease)  # what the worker's background thread does
        assert broker.release_expired() == 0

    def test_dropping_an_already_reoffered_lease_is_not_a_release(self, tmp_path):
        """Two submitters policing one spool must not double-count a re-offer."""
        broker = SpoolBroker(tmp_path, lease_ttl=5)
        spec = _spec()
        broker.enqueue(spec)
        lease = broker.lease_next("doomed")
        _backdate(lease.lease_path)
        assert broker.release_expired() == 1  # submitter 1 re-offers
        # Simulate submitter 2's sweep finding the same expired lease still
        # on disk next to the re-offered task (the unlink raced).
        lease.lease_path.write_bytes(b"stale")
        _backdate(lease.lease_path)
        assert broker.release_expired() == 0  # cleanup, not a second re-offer
        assert broker.counts() == {"tasks": 1, "leases": 0, "failed": 0}

    def test_revoked_claim_cannot_write_a_failure_log(self, tmp_path):
        """A stale holder's local error must not abort the healthy retry."""
        broker = SpoolBroker(tmp_path, lease_ttl=5)
        spec = _spec()
        broker.enqueue(spec)
        stale = broker.lease_next("stalled-worker")
        _backdate(stale.lease_path)
        broker.release_expired()  # claim revoked, trial re-offered
        fresh = broker.lease_next("healthy-worker")
        assert fresh is not None and fresh.lease_path != stale.lease_path
        broker.fail(stale, "stalled-worker", RuntimeError("local OOM"), "tb")
        assert broker.failure_for(spec.key) is None  # log suppressed
        assert fresh.lease_path.exists()  # the live claim is untouched
        broker.complete(stale)  # ownership also protects complete()
        assert fresh.lease_path.exists()

    def test_wait_timeout_extends_while_a_lease_is_fresh(self, tmp_path):
        """The timeout detects abandonment, not long trials."""
        import time

        from repro.runner import ResultCache

        broker = SpoolBroker(tmp_path / "spool", lease_ttl=1.0)
        spec = _spec()
        broker.enqueue(spec)
        broker.lease_next("slow-but-alive")  # fresh mtime, never heartbeats
        start = time.monotonic()
        with pytest.raises(SpoolTimeout):
            broker.wait([spec], ResultCache(tmp_path / "cache"), timeout=0.4)
        # The first deadline (0.4s) was extended because the lease was
        # fresh; only after the TTL expired it (>= 1s) could abandonment be
        # declared.
        assert time.monotonic() - start >= 1.0


class TestWorkerLoop:
    def test_worker_executes_and_caches(self, tmp_path):
        broker = SpoolBroker(tmp_path / "spool")
        cache = ResultCache(tmp_path / "cache")
        specs = [_spec(seed=s) for s in (1, 2)]
        for spec in specs:
            broker.enqueue(spec)
        executed = run_worker(
            tmp_path / "spool", tmp_path / "cache", idle_timeout=0.05, quiet=True
        )
        assert executed == 2
        assert all(cache.get(spec) is not None for spec in specs)
        assert broker.counts() == {"tasks": 0, "leases": 0, "failed": 0}

    def test_worker_respects_max_trials(self, tmp_path):
        broker = SpoolBroker(tmp_path / "spool")
        for seed in (1, 2, 3):
            broker.enqueue(_spec(seed=seed))
        executed = run_worker(
            tmp_path / "spool", tmp_path / "cache", max_trials=2, quiet=True
        )
        assert executed == 2
        assert broker.counts()["tasks"] == 1

    def test_worker_skips_already_cached_trials(self, tmp_path):
        broker = SpoolBroker(tmp_path / "spool")
        cache = ResultCache(tmp_path / "cache")
        spec = _spec()
        from repro.runner import run_trial

        cache.put(spec, run_trial(spec))
        broker.enqueue(spec)
        executed = run_worker(
            tmp_path / "spool", tmp_path / "cache", idle_timeout=0.05, quiet=True
        )
        assert executed == 0  # served by content addressing, not re-executed
        assert broker.counts()["tasks"] == 0

    def test_failing_trial_writes_a_failure_log(self, tmp_path):
        broker = SpoolBroker(tmp_path / "spool")
        bad = _spec(dataset="no-such-dataset")
        broker.enqueue(bad)
        executed = run_worker(
            tmp_path / "spool",
            tmp_path / "cache",
            idle_timeout=0.05,
            worker_id="w-under-test",
            quiet=True,
        )
        assert executed == 0
        failure = broker.failure_for(bad.key)
        assert failure is not None
        assert failure["worker"] == "w-under-test"
        assert "no-such-dataset" in failure["traceback"]
        # The submitter surfaces the remote traceback.
        with pytest.raises(RemoteTrialError, match="no-such-dataset"):
            broker.wait([bad], ResultCache(tmp_path / "cache"), timeout=5)

    def test_enqueue_clears_stale_failure_logs(self, tmp_path):
        broker = SpoolBroker(tmp_path / "spool")
        bad = _spec(dataset="no-such-dataset")
        broker.enqueue(bad)
        run_worker(tmp_path / "spool", tmp_path / "cache", idle_timeout=0.05, quiet=True)
        assert broker.failure_for(bad.key) is not None
        broker.enqueue(bad)  # the retry path after fixing the environment
        assert broker.failure_for(bad.key) is None
        assert broker.counts()["tasks"] == 1


class TestExecutionConfig:
    def test_distributed_requires_spool_and_cache(self, tmp_path):
        with pytest.raises(ValueError, match="spool_dir"):
            ExecutionConfig(mode="distributed", cache_dir=tmp_path)
        with pytest.raises(ValueError, match="cache_dir"):
            ExecutionConfig(mode="distributed", spool_dir=tmp_path)
        with pytest.raises(ValueError, match="cache_dir"):
            ExecutionConfig(
                mode="distributed", spool_dir=tmp_path, cache_dir=tmp_path, use_cache=False
            )

    def test_unknown_mode_and_preset_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            ExecutionConfig(mode="cluster")
        with pytest.raises(ValueError, match="preset"):
            ExecutionConfig.coerce("cluster")
        with pytest.raises(TypeError):
            ExecutionConfig.coerce(4)

    def test_string_presets(self, tmp_path, monkeypatch):
        assert ExecutionConfig.coerce(None) == ExecutionConfig()
        assert ExecutionConfig.coerce("serial").workers == 1
        assert ExecutionConfig.coerce("parallel").workers == 0
        monkeypatch.setenv("REPRO_SPOOL_DIR", str(tmp_path / "spool"))
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        coerced = ExecutionConfig.coerce("distributed")
        assert coerced.mode == "distributed"
        assert str(coerced.spool_dir) == str(tmp_path / "spool")

    def test_wait_timeout_without_workers(self, tmp_path):
        execution = ExecutionConfig(
            mode="distributed",
            spool_dir=tmp_path / "spool",
            cache_dir=tmp_path / "cache",
            wait_timeout=0.3,
        )
        with pytest.raises(SpoolTimeout, match="workers running"):
            run_experiment_grid(_grid_jobs()[:1], FAST, execution)
        # The trials stayed enqueued for whenever workers do appear.
        assert SpoolBroker(tmp_path / "spool").counts()["tasks"] == FAST.n_seeds


class TestDistributedGrid:
    def test_matches_serial_run_with_two_worker_processes(self, tmp_path, subprocess_env):
        spool, cache_dir = tmp_path / "spool", tmp_path / "cache"
        workers = [_spawn_worker(subprocess_env, spool, cache_dir) for _ in range(2)]
        try:
            distributed = run_experiment_grid(
                _grid_jobs(),
                FAST,
                ExecutionConfig(
                    mode="distributed",
                    spool_dir=spool,
                    cache_dir=cache_dir,
                    wait_timeout=120,
                ),
            )
        finally:
            exit_codes = [worker.wait(timeout=60) for worker in workers]
        assert exit_codes == [0, 0]
        report = last_report()
        assert report.n_remote == 2 * FAST.n_seeds
        assert report.n_executed == 0
        assert (
            report.n_remote + report.n_cached + report.n_deduplicated == report.n_trials
        )

        serial = run_experiment_grid(_grid_jobs(), FAST, ExecutionConfig(workers=1))
        for key in serial:
            for ours, theirs in zip(serial[key].histories, distributed[key].histories):
                assert pickle.dumps(ours) == pickle.dumps(theirs)

    def test_dead_workers_trial_is_rereleased_and_completed(
        self, tmp_path, subprocess_env
    ):
        """Killing a worker mid-grid: its lease expires and another finishes."""
        spool, cache_dir = tmp_path / "spool", tmp_path / "cache"
        broker = SpoolBroker(spool, lease_ttl=1.0)
        jobs = _grid_jobs()[:1]
        specs = [spec for _, spec in expand_jobs(jobs, FAST)]
        # Simulate a worker that claimed a trial and was then SIGKILLed: the
        # lease exists, nobody heartbeats it, and its mtime is already old.
        broker.enqueue(specs[0])
        dead_lease = broker.lease_next("killed-mid-trial")
        assert dead_lease is not None
        _backdate(dead_lease.lease_path)

        live = _spawn_worker(subprocess_env, spool, cache_dir, "--lease-ttl", "1.0")
        try:
            results = run_experiment_grid(
                jobs,
                FAST,
                ExecutionConfig(
                    mode="distributed",
                    spool_dir=spool,
                    cache_dir=cache_dir,
                    lease_ttl=1.0,
                    wait_timeout=120,
                ),
            )
        finally:
            assert live.wait(timeout=60) == 0
        report = last_report()
        assert report.n_remote == FAST.n_seeds
        assert report.n_released >= 1  # crash recovery actually fired
        assert len(results[jobs[0].key].histories) == FAST.n_seeds

    def test_warm_rerun_is_served_from_cache_without_workers(self, tmp_path):
        spool, cache_dir = tmp_path / "spool", tmp_path / "cache"
        jobs = _grid_jobs()[:1]
        # Cold run: an in-thread worker drains the spool while we wait.
        worker = threading.Thread(
            target=run_worker,
            args=(spool, cache_dir),
            kwargs={"max_trials": FAST.n_seeds, "quiet": True},
        )
        worker.start()
        execution = ExecutionConfig(
            mode="distributed", spool_dir=spool, cache_dir=cache_dir, wait_timeout=120
        )
        try:
            cold = run_experiment_grid(jobs, FAST, execution)
        finally:
            worker.join(timeout=60)
        assert last_report().n_remote == FAST.n_seeds
        # Warm rerun: every trial is a cache hit; no worker needed, the
        # spool is never touched (wait_timeout would fire if it were).
        warm = run_experiment_grid(jobs, FAST, execution)
        report = last_report()
        assert report.n_cached == FAST.n_seeds and report.n_remote == 0
        for ours, theirs in zip(
            cold[jobs[0].key].histories, warm[jobs[0].key].histories
        ):
            assert pickle.dumps(ours) == pickle.dumps(theirs)

    def test_vanished_task_is_reenqueued_by_the_submitter(self, tmp_path):
        spool, cache_dir = tmp_path / "spool", tmp_path / "cache"
        spec = _spec()
        broker = SpoolBroker(spool)
        broker.enqueue(spec)
        broker.task_path(spec).unlink()  # spool wiped under us
        with pytest.raises(SpoolTimeout):
            broker.wait([spec], ResultCache(cache_dir), timeout=0.3)
        assert broker.counts()["tasks"] == 1  # self-healed before timing out
