"""Tests for the run-history query CLI (``python -m repro.runner.query``)."""

import json

import pytest

from repro.core.results import IterationRecord, RunHistory
from repro.experiments import EvaluationProtocol
from repro.runner import TrialSpec
from repro.runner.query import main, trajectory_diff
from repro.runner.results import IndexedResultStore, RunHistoryDB

PROTOCOL = EvaluationProtocol(
    n_iterations=3, eval_every=3, n_seeds=1, dataset_scale=0.15
)


def _history(seed, framework, accuracy):
    history = RunHistory(framework=framework, dataset="youtube", seed=seed)
    record = IterationRecord(iteration=0, query_index=0)
    record.test_accuracy = accuracy
    record.lm_warm_fits = seed  # a metric-predicate target
    history.add(record)
    return history


@pytest.fixture
def cache_dir(tmp_path):
    """A populated indexed cache: 3 trials over 2 frameworks."""
    store = IndexedResultStore(tmp_path / "cache")
    for seed, framework, accuracy in (
        (1, "activedp", 0.9),
        (2, "activedp", 0.8),
        (1, "uncertainty", 0.4),
    ):
        spec = TrialSpec(
            framework=framework, dataset="youtube", seed=seed, protocol=PROTOCOL
        )
        store.put(spec, _history(seed, framework, accuracy), wall_seconds=1.0)
    store.db.close()
    return str(tmp_path / "cache")


def _json_rows(capsys):
    return [json.loads(line) for line in capsys.readouterr().out.splitlines()]


class TestListing:
    def test_filters_and_where(self, cache_dir, capsys):
        assert main(["--cache-dir", cache_dir, "--framework", "activedp",
                     "--where", "final_accuracy >= 0.85", "--json"]) == 0
        rows = _json_rows(capsys)
        assert len(rows) == 1
        assert rows[0]["seed"] == 1 and rows[0]["framework"] == "activedp"

    def test_table_output_lists_all_trials(self, cache_dir, capsys):
        assert main(["--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert out.count("activedp") == 2
        assert "uncertainty" in out
        assert "..." in out  # content keys are shortened in table cells

    def test_empty_result_prints_placeholder(self, cache_dir, capsys):
        assert main(["--cache-dir", cache_dir, "--dataset", "nope"]) == 0
        assert "(no rows)" in capsys.readouterr().out

    def test_needs_a_database_location(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.raises(SystemExit):
            main([])


class TestLeaderboard:
    def test_groups_ranked_by_mean_metric(self, cache_dir, capsys):
        assert main(["--cache-dir", cache_dir, "--leaderboard",
                     "--metric", "final_accuracy", "--json"]) == 0
        rows = _json_rows(capsys)
        assert [row["framework"] for row in rows] == ["activedp", "uncertainty"]
        assert rows[0]["mean"] == pytest.approx(0.85)

    def test_group_by_multiple_columns(self, cache_dir, capsys):
        assert main(["--cache-dir", cache_dir, "--leaderboard",
                     "--group-by", "framework,dataset", "--json"]) == 0
        rows = _json_rows(capsys)
        assert all(row["dataset"] == "youtube" for row in rows)

    def test_unknown_metric_is_rejected(self, cache_dir):
        with pytest.raises(SystemExit):
            main(["--cache-dir", cache_dir, "--leaderboard",
                  "--metric", "no_such_metric"])


class TestReindex:
    def test_backfills_a_pickle_only_cache(self, cache_dir, capsys):
        """Deleting the index then --reindex recovers every trial row."""
        db_file = f"{cache_dir}/results.sqlite3"
        import os

        os.unlink(db_file)
        assert main(["--cache-dir", cache_dir, "--counts", "--json"]) == 0
        assert _json_rows(capsys)[0]["trials"] == 0
        assert main(["--cache-dir", cache_dir, "--reindex",
                     "--counts", "--json"]) == 0
        captured = capsys.readouterr()
        assert "reindexed 3 trial(s)" in captured.err
        assert json.loads(captured.out)["trials"] == 3

    def test_reindex_requires_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.raises(SystemExit):
            main(["--db", str(tmp_path / "x.sqlite3"), "--reindex"])


class TestIterations:
    def test_lists_per_iteration_rows(self, cache_dir, capsys):
        assert main(["--cache-dir", cache_dir, "--json"]) == 0
        key = _json_rows(capsys)[0]["key"]
        assert main(["--cache-dir", cache_dir, "--iterations", key, "--json"]) == 0
        rows = _json_rows(capsys)
        assert len(rows) == 1 and rows[0]["iteration"] == 0


class TestBenchmarkTrajectory:
    @pytest.fixture
    def bench_db(self, tmp_path):
        path = tmp_path / "BENCH_history.sqlite3"
        db = RunHistoryDB(path)
        db.record_benchmark("bench_demo", {"wall": 2.0}, recorded_at=100.0)
        db.record_benchmark("bench_demo", {"wall": 1.0}, recorded_at=200.0)
        db.close()
        return path

    def test_trajectory_listing(self, bench_db, capsys):
        assert main(["--db", str(bench_db), "--benchmarks", "--json"]) == 0
        rows = _json_rows(capsys)
        assert [row["wall"] for row in rows] == [2.0, 1.0]  # oldest first

    def test_trajectory_diff_reports_drift_of_latest_run(self, bench_db, tmp_path, capsys):
        committed = tmp_path / "BENCH_core.json"
        committed.write_text(json.dumps({"bench_demo": {"wall": 2.0}}))
        assert main(["--db", str(bench_db),
                     "--trajectory-diff", str(committed)]) == 0
        out = capsys.readouterr().out
        assert "bench_demo.wall: 2 -> 1 (-50.0%)" in out

    def test_trajectory_diff_handles_missing_baseline(self, bench_db, tmp_path):
        db = RunHistoryDB(bench_db)
        lines = trajectory_diff(db, tmp_path / "absent.json")
        db.close()
        assert "no committed baseline" in lines[0]

    def test_new_benchmark_without_baseline_is_flagged(self, bench_db, tmp_path):
        committed = tmp_path / "BENCH_core.json"
        committed.write_text(json.dumps({"bench_other": {"wall": 5.0}}))
        db = RunHistoryDB(bench_db)
        lines = trajectory_diff(db, committed)
        db.close()
        assert lines == ["bench_demo: new benchmark (no committed baseline)"]

    def test_no_drift_when_values_match(self, bench_db, tmp_path):
        committed = tmp_path / "BENCH_core.json"
        committed.write_text(json.dumps({"bench_demo": {"wall": 1.0}}))
        db = RunHistoryDB(bench_db)
        lines = trajectory_diff(db, committed)
        db.close()
        assert lines == ["(no drift vs committed baseline)"]


class TestRecordIntegration:
    def test_record_feeds_the_trajectory_db(self, tmp_path, monkeypatch, capsys):
        """benchmarks/record.py appends a trajectory row on every record()."""
        import sys
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
        sys.path.insert(0, str(bench_dir))
        try:
            import record as bench_record
        finally:
            sys.path.pop(0)
        monkeypatch.setenv("REPRO_BENCH_RECORD_FILE", str(tmp_path / "B.json"))
        monkeypatch.setenv("REPRO_BENCH_DB", str(tmp_path / "B.sqlite3"))
        bench_record.record("bench_demo", {"wall_s": 3.0, "nested": {"n": 7}})
        bench_record.record("bench_demo", {"wall_s": 2.0, "nested": {"n": 7}})
        assert main(["--db", str(tmp_path / "B.sqlite3"),
                     "--benchmarks", "bench_demo", "--json"]) == 0
        rows = _json_rows(capsys)
        assert [row["wall_s"] for row in rows] == [3.0, 2.0]
        assert rows[0]["nested.n"] == 7  # numeric leaves are flattened
        # The JSON file still holds only the latest numbers.
        assert json.loads((tmp_path / "B.json").read_text())["bench_demo"][
            "wall_s"
        ] == 2.0
