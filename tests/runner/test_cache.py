"""Tests for the content-addressed result cache."""

import pickle

import pytest

from repro.core.results import IterationRecord, RunHistory
from repro.experiments import EvaluationProtocol
from repro.runner import ResultCache, TrialSpec
from repro.runner.executor import run_trial

PROTOCOL = EvaluationProtocol(n_iterations=3, eval_every=3, n_seeds=1, dataset_scale=0.15)


def _history(seed=0):
    history = RunHistory(framework="f", dataset="d", seed=seed)
    record = IterationRecord(iteration=1, query_index=4)
    record.test_accuracy = 0.5
    history.add(record)
    return history


def _spec(seed=7):
    return TrialSpec(framework="uncertainty", dataset="youtube", seed=seed, protocol=PROTOCOL)


class TestRoundTrip:
    def test_put_then_get(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        assert cache.get(spec) is None
        assert spec not in cache
        cache.put(spec, _history())
        assert spec in cache
        assert len(cache) == 1
        loaded = cache.get(spec)
        assert loaded.records[0].query_index == 4
        assert loaded.records[0].test_accuracy == 0.5

    def test_layout_shards_by_key_prefix(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        path = cache.put(spec, _history())
        assert path.parent.name == spec.key[:2]
        assert path.name == f"{spec.key}.pkl"

    @pytest.mark.parametrize(
        "garbage", [b"not a pickle", b"garbage\n", b"", b"\x80\x04truncated"]
    )
    def test_corrupt_entry_is_a_miss_and_quarantined(self, tmp_path, garbage):
        # Unpickling garbage raises different exception types depending on
        # the bytes (UnpicklingError, ValueError, EOFError, ...); all of
        # them must read as a miss — and move the bad file aside so the
        # recompute's put() lands in a clean slot.
        cache = ResultCache(tmp_path)
        spec = _spec()
        path = cache.put(spec, _history())
        path.write_bytes(garbage)
        assert cache.get(spec) is None
        assert not path.exists()
        quarantined = path.with_name(path.name + ".corrupt")
        assert quarantined.read_bytes() == garbage

    def test_truncated_entry_recompute_lands_after_quarantine(self, tmp_path):
        """The multiple-writer scenario: corrupt entry -> miss -> rewrite -> hit."""
        cache = ResultCache(tmp_path)
        spec = _spec()
        path = cache.put(spec, _history())
        path.write_bytes(path.read_bytes()[:10])  # truncated by a dying writer
        assert cache.get(spec) is None
        assert spec not in cache  # __contains__ agrees once quarantined
        cache.put(spec, _history())
        assert cache.get(spec) is not None
        assert len(cache) == 1  # the .corrupt file is not counted as an entry

    def test_wrong_typed_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        path = cache.put(spec, _history())
        path.write_bytes(pickle.dumps({"not": "a RunHistory"}))
        assert cache.get(spec) is None
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()

    def test_keys_present_snapshots_without_per_key_stats(self, tmp_path):
        """One listing per key-prefix shard answers membership for a whole
        pending set (what the polling spool submitter uses each round)."""
        cache = ResultCache(tmp_path)
        hits = [_spec(1), _spec(2)]
        misses = [_spec(3), _spec(4)]
        for spec in hits:
            cache.put(spec, _history())
        assert cache.keys_present([]) == set()
        assert cache.keys_present(hits + misses) == {spec.key for spec in hits}
        # Raw keys and specs are interchangeable, and quarantined entries
        # (``.pkl.corrupt``) are not reported as present.
        assert cache.keys_present([hits[0].key]) == {hits[0].key}
        path = cache.path_for(hits[0])
        path.rename(path.with_name(path.name + ".corrupt"))
        assert cache.keys_present(hits) == {hits[1].key}

    def test_keys_present_listing_branch_matches_stat_branch(self, tmp_path):
        """Above the small-set threshold keys_present switches from per-key
        stats to per-prefix listings; both must answer identically."""
        cache = ResultCache(tmp_path)
        specs = [_spec(seed) for seed in range(40)]
        for spec in specs[::2]:
            cache.put(spec, _history())
        expected = {spec.key for spec in specs[::2]}
        assert cache.keys_present(specs) == expected  # 40 keys: listing path
        for spec in specs:  # one key at a time: stat path
            assert cache.keys_present([spec]) == (
                {spec.key} if spec.key in expected else set()
            )

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_spec(1), _history(1))
        cache.put(_spec(2), _history(2))
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_clear_also_removes_quarantined_files(self, tmp_path):
        """The quarantine-leak fix: ``clear()`` used to unlink only ``*.pkl``
        entries, so ``.pkl.corrupt`` files survived a clear and silently
        accumulated forever."""
        cache = ResultCache(tmp_path)
        cache.put(_spec(1), _history(1))
        path = cache.put(_spec(2), _history(2))
        path.write_bytes(b"garbage")
        assert cache.get(_spec(2)) is None  # quarantines spec 2's entry
        assert cache.clear() == 1  # live entries only in the count
        assert len(cache) == 0
        assert cache.n_quarantined() == 0
        assert list(tmp_path.rglob("*.corrupt")) == []

    def test_n_quarantined_counts_corrupt_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.n_quarantined() == 0
        for seed in (1, 2, 3):
            cache.put(_spec(seed), _history(seed))
        for seed in (1, 2):
            cache.path_for(_spec(seed)).write_bytes(b"garbage")
            assert cache.get(_spec(seed)) is None
        assert cache.n_quarantined() == 2
        assert len(cache) == 1  # quarantined entries are not live entries


class TestDeterminism:
    def test_same_spec_produces_byte_identical_history(self, tmp_path):
        """Executing the same spec twice pickles to the exact same bytes."""
        spec = _spec(seed=11)
        first = run_trial(spec)
        second = run_trial(spec)
        assert pickle.dumps(first) == pickle.dumps(second)

        cache = ResultCache(tmp_path)
        cache.put(spec, first)
        assert pickle.dumps(cache.get(spec)) == pickle.dumps(first)
