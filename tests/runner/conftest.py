"""Shared fixtures for the runner test suite."""

import os
from pathlib import Path

import pytest

import repro


@pytest.fixture()
def subprocess_env():
    """Environment for fresh-interpreter subprocesses.

    Prepends the directory that provides ``repro`` to PYTHONPATH so the
    child resolves the package the same way this process did, however the
    parent interpreter found it (PYTHONPATH, editable install...).
    """
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
    return env
