"""Shared fixtures for the runner test suite."""

import pytest

from repro.runner.fleet import subprocess_env as _subprocess_env


@pytest.fixture()
def subprocess_env():
    """Environment for fresh-interpreter subprocesses.

    Prepends the directory that provides ``repro`` to PYTHONPATH so the
    child resolves the package the same way this process did, however the
    parent interpreter found it (PYTHONPATH, editable install...).
    """
    return _subprocess_env()
