"""Protocol-level contract suite, run identically against every broker backend.

``tests/runner/test_broker.py`` pins the spool backend's *implementation*
(lease-file names, shard directories, listing counts); this module pins the
:class:`~repro.runner.brokers.base.Broker` *contract* — the semantics every
backend must share for the engine, the worker daemon and the supervisor to
be backend-agnostic.  Each test is parametrised over all of
:data:`~repro.runner.brokers.BROKER_BACKENDS`, so adding a backend means
adding one factory branch here and inheriting the whole suite.
"""

from __future__ import annotations

import pickle
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.results import RunHistory
from repro.experiments import EvaluationProtocol
from repro.runner import (
    BROKER_BACKENDS,
    RemoteTrialError,
    ResultCache,
    SpoolTimeout,
    SqliteBroker,
    TrialSpec,
    create_broker,
)

FAST = EvaluationProtocol(n_iterations=2, eval_every=2, n_seeds=2, dataset_scale=0.15)


def _spec(seed=0, framework="uncertainty", dataset="youtube"):
    return TrialSpec(framework=framework, dataset=dataset, seed=seed, protocol=FAST)


def _history(spec):
    # The cache quarantines anything that is not a RunHistory, so fake
    # workers must publish the real type.
    return RunHistory(framework=spec.framework, dataset=spec.dataset, seed=spec.seed)


@pytest.fixture(params=BROKER_BACKENDS)
def backend(request):
    """The backend name under test (the suite runs once per backend)."""
    return request.param


@pytest.fixture()
def make_broker(backend, tmp_path):
    """Factory building brokers of the parametrised backend over one queue.

    Multiple calls share the same location (the multi-submitter /
    multi-worker scenarios need independent instances over one queue).
    """

    def build(**kwargs):
        kwargs.setdefault("lease_ttl", 60.0)
        return create_broker(backend, tmp_path / "queue", **kwargs)

    return build


def _backdate_lease(broker, lease, seconds=3600.0):
    """Age a claim's heartbeat so the TTL sees it as abandoned (any backend)."""
    if isinstance(broker, SqliteBroker):
        with broker._tx() as conn:
            conn.execute(
                "UPDATE tasks SET heartbeat = heartbeat - ? WHERE key = ?",
                (seconds, lease.key),
            )
    else:
        import os

        stamp = lease.lease_path.stat().st_mtime - seconds
        os.utime(lease.lease_path, (stamp, stamp))


class TestEnqueueContract:
    def test_enqueue_is_idempotent_per_content_key(self, make_broker):
        broker = make_broker()
        spec = _spec()
        assert broker.enqueue(spec) is True
        assert broker.enqueue(spec) is False
        assert broker.counts() == {"tasks": 1, "leases": 0, "failed": 0, "corrupt": 0}

    def test_enqueue_skips_claimed_trials(self, make_broker):
        broker = make_broker()
        spec = _spec()
        broker.enqueue(spec)
        broker.lease_next("w1")
        assert broker.enqueue(spec) is False
        counts = broker.counts()
        assert counts["tasks"] == 0 and counts["leases"] == 1

    def test_enqueue_batch_counts_only_new_trials(self, make_broker):
        broker = make_broker()
        specs = [_spec(seed=seed) for seed in range(6)]
        assert broker.enqueue_batch(specs) == 6
        assert broker.enqueue_batch(specs) == 0  # all already pending
        broker.lease_batch("w1", limit=2)
        more = specs + [_spec(seed=6)]
        # Pending and leased trials both skipped; only the new one lands.
        assert broker.enqueue_batch(more) == 1
        counts = broker.counts()
        assert counts["tasks"] == 5 and counts["leases"] == 2

    def test_enqueue_batch_deduplicates_within_the_batch(self, make_broker):
        broker = make_broker()
        spec = _spec()
        assert broker.enqueue_batch([spec, spec, spec]) == 1
        assert broker.counts()["tasks"] == 1

    def test_enqueue_batch_matches_serial_enqueue_results(self, make_broker):
        batched = make_broker()
        specs = [_spec(seed=seed, dataset=ds) for seed in range(4)
                 for ds in ("youtube", "imdb")]
        assert batched.enqueue_batch(specs) == sum(1 for _ in specs)
        serial_keys = {spec.key for spec in specs}
        drained = {lease.key for lease in batched.lease_batch("w", limit=100)}
        assert drained == serial_keys


class TestLeaseContract:
    def test_lease_round_trips_the_spec(self, make_broker):
        broker = make_broker()
        spec = _spec()
        broker.enqueue(spec)
        lease = broker.lease_next("w1")
        assert lease.key == spec.key
        assert lease.spec == spec
        assert pickle.dumps(lease.spec) == pickle.dumps(spec)
        assert broker.lease_next("w2") is None  # exclusive

    def test_racing_claims_have_exactly_one_winner(self, make_broker):
        broker = make_broker()
        broker.enqueue(_spec())
        barrier = threading.Barrier(8)

        def claim():
            barrier.wait()
            return broker.lease_next()

        with ThreadPoolExecutor(max_workers=8) as pool:
            wins = [lease for lease in pool.map(lambda _: claim(), range(8)) if lease]
        assert len(wins) == 1

    def test_concurrent_drain_is_exactly_once(self, backend, tmp_path):
        specs = [_spec(seed=seed, dataset=ds) for seed in range(25)
                 for ds in ("youtube", "imdb")]
        submit = create_broker(backend, tmp_path / "queue")
        submit.enqueue_batch(specs)
        claimed: list[list[str]] = [[] for _ in range(4)]
        barrier = threading.Barrier(4)

        def drain(i):
            # Per-thread broker instance, as real workers would have.
            broker = create_broker(backend, tmp_path / "queue")
            barrier.wait()
            while True:
                batch = broker.lease_batch(f"w{i}", limit=4)
                if not batch:
                    return
                claimed[i] += [lease.key for lease in batch]

        threads = [threading.Thread(target=drain, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        keys = sorted(key for per_worker in claimed for key in per_worker)
        assert keys == sorted(spec.key for spec in specs)

    def test_batch_respects_limit_and_prefers_one_shard(self, make_broker):
        broker = make_broker()
        specs = [_spec(seed=seed, dataset=ds) for seed in range(8)
                 for ds in ("youtube", "imdb")]
        broker.enqueue_batch(specs)
        batch = broker.lease_batch("w1", limit=5)
        assert len(batch) == 5
        # Dataset affinity: a batch no larger than a shard stays within it
        # (8 trials per dataset here), so the worker's warm corpus is reused.
        datasets = {lease.spec.dataset for lease in batch}
        assert len(datasets) == 1

    def test_batch_tops_up_across_shards_when_needed(self, make_broker):
        broker = make_broker()
        specs = [_spec(seed=seed, dataset=ds) for seed in range(3)
                 for ds in ("youtube", "imdb")]
        broker.enqueue_batch(specs)
        batch = broker.lease_batch("w1", limit=6)
        assert len(batch) == 6  # 3 per shard: the batch crossed shards

    def test_release_re_offers_for_any_claimant(self, make_broker):
        broker = make_broker()
        spec = _spec()
        broker.enqueue(spec)
        lease = broker.lease_next("w1")
        broker.release(lease)
        counts = broker.counts()
        assert counts["tasks"] == 1 and counts["leases"] == 0
        again = broker.lease_next("w2")
        assert again.key == spec.key

    def test_complete_removes_the_trial(self, make_broker):
        broker = make_broker()
        broker.enqueue(_spec())
        lease = broker.lease_next("w1")
        broker.complete(lease)
        assert broker.counts() == {"tasks": 0, "leases": 0, "failed": 0, "corrupt": 0}
        assert broker.lease_next("w2") is None


class TestExpiryContract:
    def test_expired_claims_are_re_offered(self, make_broker):
        broker = make_broker()
        broker.enqueue(_spec())
        lease = broker.lease_next("w1")
        assert broker.release_expired() == 0  # fresh heartbeat: kept
        _backdate_lease(broker, lease)
        assert broker.release_expired() == 1
        counts = broker.counts()
        assert counts["tasks"] == 1 and counts["leases"] == 0

    def test_heartbeat_keeps_a_claim_alive(self, make_broker):
        broker = make_broker(lease_ttl=0.4)
        broker.enqueue(_spec())
        lease = broker.lease_next("w1")
        time.sleep(0.5)
        broker.heartbeat(lease)
        assert broker.release_expired() == 0

    def test_expiry_sweep_respects_key_scope(self, make_broker):
        broker = make_broker()
        mine, theirs = _spec(seed=0), _spec(seed=1)
        broker.enqueue_batch([mine, theirs])
        leases = {lease.key: lease for lease in broker.lease_batch("w1", limit=2)}
        for lease in leases.values():
            _backdate_lease(broker, lease)
        assert broker.release_expired(keys=[mine.key]) == 1
        counts = broker.counts()
        assert counts["tasks"] == 1 and counts["leases"] == 1

    def test_expiry_sweep_respects_shard_scope(self, make_broker):
        broker = make_broker()
        youtube, imdb = _spec(dataset="youtube"), _spec(dataset="imdb")
        broker.enqueue_batch([youtube, imdb])
        leases = broker.lease_batch("w1", limit=2)
        for lease in leases:
            _backdate_lease(broker, lease)
        assert broker.release_expired(shards=["youtube"]) == 1
        # The imdb claim was out of scope: still leased, still expired.
        assert broker.counts()["leases"] == 1
        assert broker.release_expired() == 1

    def test_revoked_claim_cannot_complete_or_release(self, make_broker):
        broker = make_broker()
        spec = _spec()
        broker.enqueue(spec)
        stale = broker.lease_next("w1")
        _backdate_lease(broker, stale)
        broker.release_expired()
        fresh = broker.lease_next("w2")
        assert fresh.key == spec.key
        # The revoked holder's complete/release must not touch w2's claim.
        broker.complete(stale)
        broker.release(stale)
        counts = broker.counts()
        assert counts["leases"] == 1 and counts["tasks"] == 0
        broker.complete(fresh)
        assert broker.counts()["leases"] == 0


class TestFailureContract:
    def test_fail_records_a_log_the_submitter_raises(self, make_broker, tmp_path):
        broker = make_broker()
        spec = _spec()
        broker.enqueue(spec)
        lease = broker.lease_next("w1")
        broker.fail(lease, "w1", RuntimeError("boom"), "traceback-text")
        failure = broker.failure_for(spec.key)
        assert failure["worker"] == "w1"
        assert "boom" in failure["error"]
        assert failure["traceback"] == "traceback-text"
        assert broker.counts()["failed"] == 1
        with pytest.raises(RemoteTrialError, match="boom"):
            broker.wait([spec], ResultCache(tmp_path / "cache"), timeout=5)

    def test_revoked_claim_records_no_failure(self, make_broker):
        broker = make_broker()
        spec = _spec()
        broker.enqueue(spec)
        stale = broker.lease_next("w1")
        _backdate_lease(broker, stale)
        broker.release_expired()
        broker.lease_next("w2")
        broker.fail(stale, "w1", RuntimeError("stale holder"), "tb")
        assert broker.failure_for(spec.key) is None
        assert broker.counts()["failed"] == 0

    def test_enqueue_clears_failure_log_only_when_it_writes(self, make_broker):
        broker = make_broker()
        spec = _spec()
        broker.enqueue(spec)
        lease = broker.lease_next("w1")
        # A second submitter re-enqueues while the trial is leased and then
        # failing: the no-op enqueue must not wipe the evidence.
        assert broker.enqueue(spec) is False
        broker.fail(lease, "w1", RuntimeError("boom"), "tb")
        assert broker.enqueue_batch([]) == 0
        assert broker.failure_for(spec.key) is not None
        # Once nothing is pending/leased, enqueue IS the retry path.
        assert broker.enqueue(spec) is True
        assert broker.failure_for(spec.key) is None


class TestWaitContract:
    def test_wait_returns_histories_written_by_workers(self, make_broker, tmp_path):
        broker = make_broker()
        cache = ResultCache(tmp_path / "cache")
        specs = [_spec(seed=seed) for seed in range(3)]
        broker.enqueue_batch(specs)

        def worker():
            mine = create_broker(
                "sqlite" if isinstance(broker, SqliteBroker) else "spool",
                broker.location if isinstance(broker, SqliteBroker) else broker.root,
            )
            while True:
                lease = mine.lease_next("bg")
                if lease is None:
                    return
                cache.put(lease.key, _history(lease.spec))
                mine.complete(lease)

        thread = threading.Thread(target=worker)
        thread.start()
        histories = broker.wait(specs, cache, timeout=30)
        thread.join(timeout=10)
        assert set(histories) == {spec.key for spec in specs}
        assert histories[specs[1].key].seed == 1

    def test_wait_times_out_without_live_workers(self, make_broker, tmp_path):
        broker = make_broker()
        spec = _spec()
        broker.enqueue(spec)
        with pytest.raises(SpoolTimeout, match="workers running"):
            broker.wait([spec], ResultCache(tmp_path / "cache"), timeout=0.3)

    def test_wait_re_offers_expired_claims_of_its_trials(self, make_broker, tmp_path):
        broker = make_broker()
        spec = _spec()
        broker.enqueue(spec)
        lease = broker.lease_next("crashed-worker")
        _backdate_lease(broker, lease)
        released: list[int] = []
        with pytest.raises(SpoolTimeout):
            broker.wait(
                [spec],
                ResultCache(tmp_path / "cache"),
                timeout=0.3,
                on_released=released.append,
            )
        assert sum(released) == 1
        assert broker.counts()["tasks"] == 1  # re-offered, not lost

    def test_wait_self_heals_vanished_trials(self, make_broker, tmp_path):
        broker = make_broker()
        spec = _spec()
        # Never enqueued at all — wait() must restore it from the spec it
        # holds before giving up.
        with pytest.raises(SpoolTimeout):
            broker.wait([spec], ResultCache(tmp_path / "cache"), timeout=0.3)
        assert broker.counts()["tasks"] == 1

    def test_wait_serves_results_already_in_cache(self, make_broker, tmp_path):
        broker = make_broker()
        cache = ResultCache(tmp_path / "cache")
        spec = _spec()
        cache.put(spec.key, _history(spec))
        histories = broker.wait([spec], cache, timeout=5)
        assert histories[spec.key].seed == spec.seed


class TestIntrospectionContract:
    def test_counts_shape_is_stable(self, make_broker):
        broker = make_broker()
        assert broker.counts() == {"tasks": 0, "leases": 0, "failed": 0, "corrupt": 0}

    def test_backlog_reports_depth_and_shards(self, make_broker):
        broker = make_broker()
        assert broker.backlog()["tasks"] == 0
        specs = [_spec(seed=seed, dataset=ds) for seed in range(3)
                 for ds in ("youtube", "imdb")]
        broker.enqueue_batch(specs)
        backlog = broker.backlog()
        assert backlog["tasks"] == 6
        assert backlog["shards"] == 2
        assert backlog["leases"] == 0
        broker.lease_batch("w1", limit=3)
        backlog = broker.backlog()
        assert backlog["tasks"] == 3 and backlog["leases"] == 3

    def test_stats_count_claims_and_batches(self, make_broker):
        broker = make_broker()
        broker.enqueue_batch([_spec(seed=seed) for seed in range(4)])
        broker.lease_batch("w1", limit=4)
        assert broker.stats.claims == 4
        assert broker.stats.batches == 1
