"""Tests for the shared fleet-process helpers in ``repro.runner.fleet``.

These helpers replaced three copy-pasted variants (the supervisor's worker
spawner, the distributed example's, and the runner test fixtures'), so the
contract here is what all those call sites rely on.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.runner import (
    fleet_paths,
    subprocess_env,
    supervisor_command,
    worker_command,
)

SRC_DIR = str(Path(subprocess_env.__code__.co_filename).resolve().parents[2])


class TestSubprocessEnv:
    def test_prepends_package_dir_to_pythonpath(self, monkeypatch):
        monkeypatch.delenv("PYTHONPATH", raising=False)
        env = subprocess_env()
        assert env["PYTHONPATH"] == SRC_DIR

    def test_preserves_existing_entries(self, monkeypatch):
        monkeypatch.setenv("PYTHONPATH", "/elsewhere")
        env = subprocess_env()
        assert env["PYTHONPATH"].split(os.pathsep) == [SRC_DIR, "/elsewhere"]

    def test_idempotent_when_already_present(self, monkeypatch):
        monkeypatch.setenv("PYTHONPATH", SRC_DIR + os.pathsep + "/elsewhere")
        env = subprocess_env()
        assert env["PYTHONPATH"].split(os.pathsep).count(SRC_DIR) == 1

    def test_extra_entries_merge_on_top(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLEET_TEST_SENTINEL", raising=False)
        env = subprocess_env(extra={"REPRO_FLEET_TEST_SENTINEL": "1"})
        assert env["REPRO_FLEET_TEST_SENTINEL"] == "1"
        assert os.environ.get("REPRO_FLEET_TEST_SENTINEL") is None

    def test_child_interpreter_resolves_repro(self):
        result = subprocess.run(
            [sys.executable, "-c", "import repro; print(repro.__name__)"],
            env=subprocess_env(),
            capture_output=True,
            text=True,
            check=True,
        )
        assert result.stdout.strip() == "repro"


def test_fleet_paths_layout(tmp_path):
    spool, cache_dir = fleet_paths(tmp_path)
    assert spool == str(tmp_path / "spool")
    assert cache_dir == str(tmp_path / "cache")
    # The helper never creates directories; backends own their locations.
    assert not Path(spool).exists() and not Path(cache_dir).exists()


class TestCommandBuilders:
    def test_worker_command_defaults(self):
        command = worker_command("/q", "/c")
        assert command[:3] == [sys.executable, "-m", "repro.runner.worker"]
        assert command[3:] == [
            "--spool", "/q", "--cache-dir", "/c",
            "--broker", "spool", "--results", "pickle",
        ]

    def test_worker_command_renders_only_given_knobs(self):
        command = worker_command(
            "/q", "/c", broker="sqlite", results="indexed",
            max_trials=3, idle_timeout=2.5, worker_id="w-1", quiet=True,
        )
        rest = command[3:]
        assert rest[:8] == [
            "--spool", "/q", "--cache-dir", "/c",
            "--broker", "sqlite", "--results", "indexed",
        ]
        assert ("--idle-timeout", "2.5") == tuple(rest[rest.index("--idle-timeout"):][:2])
        assert ("--max-trials", "3") == tuple(rest[rest.index("--max-trials"):][:2])
        assert ("--worker-id", "w-1") == tuple(rest[rest.index("--worker-id"):][:2])
        assert rest[-1] == "--quiet"
        for absent in ("--lease-ttl", "--claim-batch", "--poll-interval"):
            assert absent not in rest

    def test_supervisor_command_defaults_and_knobs(self):
        command = supervisor_command("/q", "/c")
        assert command[:3] == [sys.executable, "-m", "repro.runner.supervisor"]
        assert "--drain" not in command and "--quiet" not in command

        full = supervisor_command(
            "/q", "/c", max_workers=4, tasks_per_worker=2,
            worker_idle_timeout=1.5, drain=True, quiet=True,
        )
        rest = full[3:]
        assert ("--max-workers", "4") == tuple(rest[rest.index("--max-workers"):][:2])
        assert ("--tasks-per-worker", "2") == tuple(
            rest[rest.index("--tasks-per-worker"):][:2]
        )
        assert rest[-2:] == ["--drain", "--quiet"]
        assert "--min-workers" not in rest

    def test_worker_argv_parses_under_the_daemon_cli(self, tmp_path):
        # The builder's flag spelling must match the daemon's parser: a
        # worker launched with max_trials=0 parses, runs zero trials and
        # exits cleanly.
        spool, cache_dir = fleet_paths(tmp_path)
        command = worker_command(spool, cache_dir, max_trials=0, quiet=True)
        result = subprocess.run(
            command, env=subprocess_env(), capture_output=True, text=True, timeout=60
        )
        assert result.returncode == 0, result.stderr
