"""Tests for the experiment engine: parallel/serial equivalence, caching, grids."""

import pickle

import pytest

from repro.experiments import EvaluationProtocol, run_framework_on_dataset
from repro.runner import (
    ExecutionConfig,
    GridJob,
    TrialSpec,
    expand_jobs,
    last_report,
    run_experiment_grid,
    run_specs,
)

FAST = EvaluationProtocol(n_iterations=3, eval_every=3, n_seeds=2, dataset_scale=0.15)


def _grid_jobs():
    # 2 frameworks x 2 seeds (seeds come from the protocol).
    return [
        GridJob(key="uncertainty", framework="uncertainty", dataset="youtube"),
        GridJob(key="nemo", framework="nemo", dataset="youtube"),
    ]


class TestExpansion:
    def test_one_spec_per_job_and_seed(self):
        expanded = expand_jobs(_grid_jobs(), FAST)
        assert len(expanded) == 4
        seeds = {spec.seed for _, spec in expanded}
        assert len(seeds) == 2
        assert all(spec.group == job.key for job, spec in expanded)

    def test_duplicate_job_keys_rejected(self):
        jobs = [
            GridJob(key="same", framework="uncertainty", dataset="youtube"),
            GridJob(key="same", framework="nemo", dataset="youtube"),
        ]
        with pytest.raises(ValueError):
            run_experiment_grid(jobs, FAST)


class TestParallelSerialEquivalence:
    def test_two_framework_two_seed_grid(self):
        """Worker-pool execution is byte-identical to the serial path."""
        serial = run_experiment_grid(_grid_jobs(), FAST, ExecutionConfig(workers=1))
        parallel = run_experiment_grid(_grid_jobs(), FAST, ExecutionConfig(workers=2))
        assert set(serial) == set(parallel) == {"uncertainty", "nemo"}
        for key in serial:
            assert serial[key].average_accuracy == parallel[key].average_accuracy
            assert serial[key].final_accuracy == parallel[key].final_accuracy
            assert serial[key].curve == parallel[key].curve
            # Byte-identical per history (pickling the list at once would
            # also compare incidental cross-history object sharing).
            for ours, theirs in zip(serial[key].histories, parallel[key].histories):
                assert pickle.dumps(ours) == pickle.dumps(theirs)


class TestCaching:
    def test_warm_rerun_executes_zero_trials(self, tmp_path):
        execution = ExecutionConfig(workers=1, cache_dir=tmp_path)
        cold = run_experiment_grid(_grid_jobs(), FAST, execution)
        report = last_report()
        assert report.n_executed == 4 and report.n_cached == 0

        warm = run_experiment_grid(_grid_jobs(), FAST, execution)
        report = last_report()
        assert report.n_executed == 0 and report.n_cached == 4
        for key in cold:
            assert warm[key].average_accuracy == cold[key].average_accuracy
            for ours, theirs in zip(cold[key].histories, warm[key].histories):
                assert pickle.dumps(ours) == pickle.dumps(theirs)

    def test_no_cache_flag_disables_cache(self, tmp_path):
        execution = ExecutionConfig(cache_dir=tmp_path, use_cache=False)
        run_experiment_grid(_grid_jobs()[:1], FAST, execution)
        assert last_report().n_cached == 0
        run_experiment_grid(_grid_jobs()[:1], FAST, execution)
        assert last_report().n_cached == 0

    def test_completed_trials_persist_when_a_later_trial_fails(self, tmp_path):
        """Interrupted grid runs keep everything finished so far."""
        from repro.runner import ResultCache

        good, bad = [spec for _, spec in expand_jobs(_grid_jobs(), FAST)][:2]
        bad = TrialSpec(
            framework="uncertainty",
            dataset="no-such-dataset",
            seed=bad.seed,
            protocol=FAST,
        )
        with pytest.raises(Exception):
            run_specs([good, bad], ExecutionConfig(workers=1, cache_dir=tmp_path))
        assert good in ResultCache(tmp_path)
        # The report describes the interrupted run, not the previous one.
        report = last_report()
        assert report.n_trials == 2 and report.n_executed == 1

    def test_cache_outcomes_marked(self, tmp_path):
        execution = ExecutionConfig(cache_dir=tmp_path)
        specs = [spec for _, spec in expand_jobs(_grid_jobs()[:1], FAST)]
        cold = run_specs(specs, execution)
        warm = run_specs(specs, execution)
        assert [o.from_cache for o in cold] == [False, False]
        assert [o.from_cache for o in warm] == [True, True]
        assert all(o.spec.key == c.spec.key for o, c in zip(warm, cold))


class TestDeduplication:
    def test_same_content_key_executes_once(self, tmp_path):
        """Two jobs expanding to identical trials share one execution."""
        jobs = [
            GridJob(key="first", framework="uncertainty", dataset="youtube"),
            GridJob(key="second", framework="uncertainty", dataset="youtube"),
        ]
        results = run_experiment_grid(jobs, FAST, ExecutionConfig(cache_dir=tmp_path))
        report = last_report()
        assert report.n_trials == 2 * FAST.n_seeds
        assert report.n_executed == FAST.n_seeds
        assert report.n_deduplicated == FAST.n_seeds
        assert report.n_cached == 0
        assert (
            report.n_executed + report.n_cached + report.n_deduplicated
            == report.n_trials
        )
        # Both cells received the full per-seed histories with equal content.
        assert results["first"].average_accuracy == results["second"].average_accuracy
        for ours, theirs in zip(
            results["first"].histories, results["second"].histories
        ):
            assert pickle.dumps(ours) == pickle.dumps(theirs)

    def test_fanned_out_histories_do_not_share_objects(self):
        specs = [spec for _, spec in expand_jobs(_grid_jobs()[:1], FAST)]
        duplicated = specs + specs
        outcomes = run_specs(duplicated, ExecutionConfig())
        assert last_report().n_deduplicated == len(specs)
        for position, twin in enumerate(specs):
            original = outcomes[position].history
            copy = outcomes[position + len(specs)].history
            assert original is not copy
            assert pickle.dumps(original) == pickle.dumps(copy)
        # Per-outcome flags agree with the report: the first occurrence
        # executed, its twin was deduplication-served.
        assert [o.deduplicated for o in outcomes] == [False] * len(specs) + [True] * len(specs)
        assert sum(not o.from_cache and not o.deduplicated for o in outcomes) == (
            last_report().n_executed
        )

    def test_deduplicated_run_matches_unduplicated(self):
        specs = [spec for _, spec in expand_jobs(_grid_jobs(), FAST)]
        plain = run_specs(specs, ExecutionConfig())
        doubled = run_specs(specs + specs, ExecutionConfig())
        for outcome, twin in zip(plain, doubled[: len(specs)]):
            assert pickle.dumps(outcome.history) == pickle.dumps(twin.history)

    def test_cache_hits_are_not_counted_as_duplicates(self, tmp_path):
        specs = [spec for _, spec in expand_jobs(_grid_jobs()[:1], FAST)]
        execution = ExecutionConfig(cache_dir=tmp_path)
        run_specs(specs, execution)
        run_specs(specs + specs, execution)
        report = last_report()
        assert report.n_cached == 2 * len(specs)
        assert report.n_deduplicated == 0 and report.n_executed == 0


class TestProtocolIntegration:
    def test_run_framework_on_dataset_uses_engine(self, tmp_path):
        execution = ExecutionConfig(cache_dir=tmp_path)
        result = run_framework_on_dataset("uncertainty", "youtube", FAST, execution=execution)
        assert result.framework == "uncertainty"
        assert len(result.histories) == FAST.n_seeds
        rerun = run_framework_on_dataset("uncertainty", "youtube", FAST, execution=execution)
        assert last_report().n_executed == 0
        assert rerun.average_accuracy == result.average_accuracy

    def test_histories_carry_real_iteration_records(self):
        result = run_framework_on_dataset("activedp", "youtube", FAST)
        records = result.histories[0].records
        assert all(record.query_index >= 0 for record in records)
        assert any(record.lf_name is not None for record in records)
        assert [record.iteration for record in records] == [1, 2, 3]
