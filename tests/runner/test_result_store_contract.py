"""Contract suite: every result-store backend honours the ResultStore protocol.

Mirrors ``test_broker_contract.py`` — the same assertions run against every
backend name in ``RESULT_STORE_BACKENDS`` so a future store inherits the
whole behavioural contract by being added to the registry.  Indexed-only
semantics (index rows, crash-mid-put divergence, ``--reindex`` recovery,
blob byte-identity vs the plain store) live in their own classes below.
"""

import pickle
import sqlite3

import pytest

from repro.core.results import IterationRecord, RunHistory
from repro.experiments import EvaluationProtocol
from repro.runner import TrialSpec, run_experiment_grid, GridJob, ExecutionConfig
from repro.runner.results import (
    RESULT_STORE_BACKENDS,
    IndexedResultStore,
    ResultCache,
    ResultStore,
    RunHistoryDB,
    create_result_store,
)

PROTOCOL = EvaluationProtocol(
    n_iterations=3, eval_every=3, n_seeds=1, dataset_scale=0.15
)


def _history(seed=0, framework="f", dataset="d", n=2):
    history = RunHistory(framework=framework, dataset=dataset, seed=seed)
    for iteration in range(n):
        record = IterationRecord(iteration=iteration, query_index=4 + iteration)
        record.test_accuracy = 0.5 + 0.1 * iteration
        record.lm_fits = iteration + 1
        record.lm_warm_fits = iteration
        history.add(record)
    return history


def _spec(seed=7, framework="uncertainty", dataset="youtube"):
    return TrialSpec(
        framework=framework, dataset=dataset, seed=seed, protocol=PROTOCOL
    )


@pytest.fixture(params=RESULT_STORE_BACKENDS)
def backend(request):
    return request.param


@pytest.fixture
def make_store(backend, tmp_path):
    def factory(root=None):
        return create_result_store(backend, root if root is not None else tmp_path)

    return factory


class TestContract:
    def test_is_a_result_store(self, make_store):
        assert isinstance(make_store(), ResultStore)

    def test_roundtrip(self, make_store):
        store = make_store()
        spec = _spec()
        assert store.get(spec) is None
        assert spec not in store
        store.put(spec, _history())
        assert spec in store
        assert len(store) == 1
        loaded = store.get(spec)
        assert loaded.records[0].query_index == 4
        assert loaded.records[1].test_accuracy == pytest.approx(0.6)

    def test_raw_key_and_spec_are_interchangeable(self, make_store):
        store = make_store()
        spec = _spec()
        store.put(spec.key, _history())
        assert store.get(spec) is not None
        assert store.get(spec.key) is not None
        assert store.path_for(spec) == store.path_for(spec.key)

    def test_put_accepts_wall_seconds(self, make_store):
        store = make_store()
        spec = _spec()
        store.put(spec, _history(), wall_seconds=1.25)
        assert store.get(spec) is not None

    def test_blob_layout_shards_by_key_prefix(self, make_store):
        store = make_store()
        spec = _spec()
        path = store.put(spec, _history())
        assert path.parent.name == spec.key[:2]
        assert path.name == f"{spec.key}.pkl"

    def test_keys_present_small_and_listing_branches(self, make_store):
        store = make_store()
        hits = [_spec(seed) for seed in range(0, 40, 2)]
        misses = [_spec(seed) for seed in range(1, 40, 2)]
        for spec in hits:
            store.put(spec, _history(spec.seed))
        expected = {spec.key for spec in hits}
        assert store.keys_present([]) == set()
        # 40 keys exercises the per-prefix listing branch...
        assert store.keys_present(hits + misses) == expected
        # ...and one key at a time the per-key stat branch.
        for spec in hits[:3] + misses[:3]:
            assert store.keys_present([spec]) == (
                {spec.key} if spec.key in expected else set()
            )

    def test_corrupt_blob_is_a_miss_and_quarantined(self, make_store):
        store = make_store()
        spec = _spec()
        path = store.put(spec, _history())
        path.write_bytes(b"garbage")
        assert store.get(spec) is None
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()
        assert store.n_quarantined() == 1
        assert len(store) == 0

    def test_clear_removes_entries_and_quarantined_files(self, make_store):
        store = make_store()
        store.put(_spec(1), _history(1))
        bad = store.put(_spec(2), _history(2))
        bad.write_bytes(b"garbage")
        assert store.get(_spec(2)) is None
        assert store.clear() == 1
        assert len(store) == 0
        assert store.n_quarantined() == 0
        assert store.get(_spec(1)) is None

    def test_byte_identical_blobs_across_backends(self, backend, tmp_path):
        """Backends may only differ in *index* state, never in blob bytes."""
        spec = _spec()
        history = _history()
        reference = ResultCache(tmp_path / "reference")
        store = create_result_store(backend, tmp_path / backend)
        assert (
            store.put(spec, history).read_bytes()
            == reference.put(spec, history).read_bytes()
        )


class TestIndexedStore:
    """Semantics only the SQLite-indexed store has."""

    def test_put_materialises_index_rows(self, tmp_path):
        store = IndexedResultStore(tmp_path)
        spec = _spec(seed=3, framework="activedp", dataset="youtube")
        store.put(spec, _history(3, "activedp", "youtube"), wall_seconds=2.5)
        (row,) = store.db.query(framework="activedp")
        assert row["key"] == spec.key
        assert row["dataset"] == "youtube"
        assert row["seed"] == 3
        assert row["average_accuracy"] == pytest.approx(0.55)
        assert row["final_accuracy"] == pytest.approx(0.6)
        assert row["lm_fits"] == 2  # final record's cumulative counter
        assert row["lm_warm_fits"] == 1
        # Spec enrichments are present on the incremental path.
        assert row["wall_seconds"] == pytest.approx(2.5)
        assert row["cache_version"] is not None
        assert row["protocol"] is not None
        assert row["group_label"] is None
        iteration_rows = store.db.iterations(spec.key)
        assert [r["iteration"] for r in iteration_rows] == [0, 1]
        assert iteration_rows[1]["test_accuracy"] == pytest.approx(0.6)

    def test_raw_key_put_indexes_without_enrichments(self, tmp_path):
        store = IndexedResultStore(tmp_path)
        spec = _spec()
        store.put(spec.key, _history())
        (row,) = store.db.query()
        assert row["key"] == spec.key
        assert row["protocol"] is None and row["cache_version"] is None

    def test_metric_predicates_and_leaderboard(self, tmp_path):
        store = IndexedResultStore(tmp_path)
        for seed, framework, accuracy in (
            (1, "activedp", 0.9),
            (2, "activedp", 0.8),
            (1, "uncertainty", 0.4),
        ):
            history = RunHistory(framework=framework, dataset="d", seed=seed)
            record = IterationRecord(iteration=0, query_index=0)
            record.test_accuracy = accuracy
            history.add(record)
            store.put(_spec(seed, framework, "d"), history)
        rows = store.db.query(where="final_accuracy >= 0.8")
        assert {row["seed"] for row in rows} == {1, 2}
        board = store.db.leaderboard(metric="final_accuracy")
        assert [row["framework"] for row in board] == ["activedp", "uncertainty"]
        assert board[0]["mean"] == pytest.approx(0.85)
        assert board[0]["n_trials"] == 2

    def test_crash_mid_put_diverges_then_reindex_recovers(self, tmp_path, monkeypatch):
        """Blob first, index second: a crash between the two loses only the
        index row, and ``reindex()`` restores consistency from the blobs."""
        store = IndexedResultStore(tmp_path)
        healthy = _spec(1)
        store.put(healthy, _history(1))

        def crash(*args, **kwargs):
            raise sqlite3.OperationalError("disk I/O error")

        monkeypatch.setattr(RunHistoryDB, "index_trial", crash)
        orphan = _spec(2)
        store.put(orphan, _history(2))  # must not raise: blobs are truth
        monkeypatch.undo()

        assert store.get(orphan) is not None  # blob landed
        keys = {row["key"] for row in store.db.query()}
        assert keys == {healthy.key}  # index missed the crash-put

        assert store.reindex() == 2
        keys = {row["key"] for row in store.db.query()}
        assert keys == {healthy.key, orphan.key}

    def test_reindex_matches_incremental_on_blob_derived_columns(self, tmp_path):
        store = IndexedResultStore(tmp_path)
        specs = [_spec(seed) for seed in range(3)]
        for spec in specs:
            store.put(spec, _history(spec.seed), wall_seconds=1.0)
        incremental = {row["key"]: row for row in store.db.query()}
        store.reindex()
        rebuilt = {row["key"]: row for row in store.db.query()}
        assert rebuilt.keys() == incremental.keys()
        from repro.runner.results.history_db import SPEC_ENRICHMENT_COLUMNS

        for key, row in rebuilt.items():
            for column, value in row.items():
                if column in SPEC_ENRICHMENT_COLUMNS:
                    assert value is None  # blobs cannot recover these
                else:
                    assert value == incremental[key][column], column

    def test_reindex_skips_quarantined_blobs(self, tmp_path):
        store = IndexedResultStore(tmp_path)
        good, bad = _spec(1), _spec(2)
        store.put(good, _history(1))
        store.put(bad, _history(2)).write_bytes(b"garbage")
        assert store.reindex() == 1
        assert {row["key"] for row in store.db.query()} == {good.key}
        assert store.n_quarantined() == 1

    def test_clear_drops_index_rows_but_keeps_benchmark_trajectory(self, tmp_path):
        store = IndexedResultStore(tmp_path)
        store.put(_spec(1), _history(1))
        store.db.record_benchmark("bench_demo", {"wall": 1.0})
        store.clear()
        counts = store.db.counts()
        assert counts["trials"] == 0 and counts["iterations"] == 0
        assert counts["benchmark_runs"] == 1

    def test_db_file_lives_inside_the_cache_root(self, tmp_path):
        store = IndexedResultStore(tmp_path)
        store.put(_spec(), _history())
        assert (tmp_path / "results.sqlite3").exists()


class TestEngineByteIdentity:
    def test_indexed_and_pickle_runs_produce_identical_blobs(self, tmp_path):
        """Indexing is pure observability: swapping the backend must change
        neither results nor a single blob byte."""
        protocol = EvaluationProtocol(
            n_iterations=2, eval_every=1, n_seeds=1, dataset_scale=0.15
        )
        jobs = [GridJob(key="u", framework="uncertainty", dataset="youtube")]
        reports = {}
        for name in RESULT_STORE_BACKENDS:
            reports[name] = run_experiment_grid(
                jobs,
                protocol,
                ExecutionConfig(
                    workers=1, cache_dir=tmp_path / name, results=name
                ),
            )
        pickle_blobs = sorted((tmp_path / "pickle").glob("*/*.pkl"))
        indexed_blobs = sorted((tmp_path / "indexed").glob("*/*.pkl"))
        assert pickle_blobs and len(pickle_blobs) == len(indexed_blobs)
        for a, b in zip(pickle_blobs, indexed_blobs):
            assert a.name == b.name
            assert a.read_bytes() == b.read_bytes()
        assert pickle.dumps(reports["pickle"]["u"].histories) == pickle.dumps(
            reports["indexed"]["u"].histories
        )
        # And only the indexed run grew an index.
        assert not (tmp_path / "pickle" / "results.sqlite3").exists()
        db = RunHistoryDB(tmp_path / "indexed")
        assert db.counts()["trials"] == 1
        db.close()
