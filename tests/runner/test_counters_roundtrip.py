"""The adaptive-early-stopping counters survive every results path.

``IterationRecord`` gained ``lm_converged_fits`` / ``lm_final_loss`` /
``glasso_sweeps`` alongside the warm-start counters.  These tests pin that
a real ActiveDP trial populates them, and that they round-trip unchanged
through the on-disk :class:`ResultCache` and the spool-broker worker path
(the same serialisation a distributed run exercises).
"""

from __future__ import annotations

import pytest

from repro.experiments import EvaluationProtocol
from repro.runner import ResultCache, SpoolBroker, TrialSpec
from repro.runner.executor import run_trial
from repro.runner.worker import run_worker

FAST = EvaluationProtocol(n_iterations=2, eval_every=2, n_seeds=2, dataset_scale=0.15)

COUNTER_FIELDS = ("lm_converged_fits", "lm_final_loss", "glasso_sweeps")


def _spec(seed=0):
    # The activedp pipeline is the one that fits EM label models and glasso,
    # so it is the only framework whose trials populate the counters.
    return TrialSpec(framework="activedp", dataset="youtube", seed=seed, protocol=FAST)


@pytest.fixture(scope="module")
def history():
    return run_trial(_spec())


def _final(history):
    assert history.records
    return history.records[-1]


class TestTrialPopulatesCounters:
    def test_final_record_carries_all_counters(self, history):
        record = _final(history)
        assert record.lm_converged_fits is not None
        assert record.lm_converged_fits >= 1
        assert record.lm_final_loss is not None
        assert record.glasso_sweeps is not None

    def test_converged_fits_never_exceed_fits(self, history):
        record = _final(history)
        assert record.lm_fits is not None
        assert record.lm_converged_fits <= record.lm_fits


class TestResultCacheRoundTrip:
    def test_counters_survive_put_get(self, tmp_path, history):
        cache = ResultCache(tmp_path / "cache")
        spec = _spec()
        cache.put(spec, history)
        loaded = cache.get(spec)
        assert loaded is not None
        original = _final(history)
        restored = _final(loaded)
        for field in COUNTER_FIELDS:
            assert getattr(restored, field) == getattr(original, field), field


class TestDistributedWorkerRoundTrip:
    def test_counters_survive_spool_execution(self, tmp_path, history):
        spec = _spec()
        SpoolBroker(tmp_path / "spool").enqueue(spec)
        run_worker(tmp_path / "spool", tmp_path / "cache", idle_timeout=0.05, quiet=True)
        remote = ResultCache(tmp_path / "cache").get(spec)
        assert remote is not None
        local = _final(history)
        distributed = _final(remote)
        # The worker re-runs the same self-contained spec, so the counters
        # must match the in-process trial exactly, not just be present.
        for field in COUNTER_FIELDS:
            assert getattr(distributed, field) == getattr(local, field), field
