"""Tests for the trial executor's degradation paths."""

import pytest

from repro.core.results import RunHistory
from repro.experiments import EvaluationProtocol
from repro.runner import TrialSpec, executor
from repro.runner.engine import GridJob, expand_jobs

FAST = EvaluationProtocol(n_iterations=3, eval_every=3, n_seeds=2, dataset_scale=0.15)


def _specs():
    jobs = [GridJob(key="uncertainty", framework="uncertainty", dataset="youtube")]
    return [spec for _, spec in expand_jobs(jobs, FAST)]


def test_unpicklable_payload_falls_back_to_serial(monkeypatch):
    """An unpicklable worker payload degrades to the serial path, not a crash.

    submit() returns before pickling happens (it runs in the pool's feeder
    thread), so the executor must pre-validate the payload; this locks in
    the module docstring's 'unpicklable kwargs degrade to an in-process
    serial loop' promise.
    """
    specs = _specs()
    calls = []

    # A function defined inside a test body cannot be pickled by reference,
    # which is exactly the failure mode of an unpicklable spec payload.
    def fake_run_trial(spec):
        calls.append(spec.key)
        return RunHistory(framework=spec.framework, dataset=spec.dataset, seed=spec.seed)

    monkeypatch.setattr(executor, "run_trial", fake_run_trial)
    with pytest.warns(RuntimeWarning, match="serially"):
        histories = executor.execute_trials(specs, workers=2)

    assert len(histories) == len(specs)
    assert calls == [spec.key for spec in specs]
    assert all(h is not None for h in histories)


def test_parallel_failure_persists_completed_trials():
    """A failing trial cancels the queue but keeps finished trials.

    With two workers, both trials start immediately; the bad one fails fast
    (unknown dataset) while the good one is in flight.  The executor must
    propagate the failure without either running queued trials to
    completion behind the caller's back or dropping the good trial's
    result from the on_result hook.
    """
    good = _specs()[0]
    bad = TrialSpec(
        framework="uncertainty", dataset="no-such-dataset", seed=good.seed, protocol=FAST
    )
    seen = []
    with pytest.raises(Exception, match="no-such-dataset"):
        executor.execute_trials(
            [bad, good], workers=2, on_result=lambda s, h: seen.append(s.key)
        )
    assert seen == [good.key]


def test_pool_creation_importerror_falls_back(monkeypatch):
    """Missing sem_open support (ImportError) degrades to the serial path."""

    class NoSemaphores:
        def __init__(self, *args, **kwargs):
            raise ImportError("This platform lacks a functioning sem_open implementation")

    monkeypatch.setattr(executor, "ProcessPoolExecutor", NoSemaphores)
    with pytest.warns(RuntimeWarning, match="serially"):
        histories = executor.execute_trials(_specs(), workers=2)
    assert all(h is not None for h in histories)


def test_failing_on_result_is_not_reinvoked():
    """A raising on_result hook runs at most once per trial.

    The salvage pass must not retry a position whose hook already ran and
    raised — that would double-count executed trials in the engine's
    report and re-attempt a failing cache write.
    """
    calls = []

    def bad_on_result(spec, history):
        calls.append(spec.key)
        raise RuntimeError("disk full")

    with pytest.raises(RuntimeError, match="disk full"):
        executor.execute_trials(_specs(), workers=2, on_result=bad_on_result)
    assert len(calls) == len(set(calls))


def test_on_result_fires_during_fallback(monkeypatch):
    """The incremental-persistence hook still fires on the fallback path."""
    specs = _specs()

    def fake_run_trial(spec):
        return RunHistory(framework=spec.framework, dataset=spec.dataset, seed=spec.seed)

    monkeypatch.setattr(executor, "run_trial", fake_run_trial)
    seen = []
    with pytest.warns(RuntimeWarning):
        executor.execute_trials(specs, workers=2, on_result=lambda s, h: seen.append(s.key))
    assert seen == [spec.key for spec in specs]
