"""Worker-fleet lifecycle tests for ``repro.runner.supervisor``.

Scaling policy is tested with injected fake spawners (no processes at
all); drain-then-exit runs real :func:`repro.runner.worker.run_worker`
loops on threads through the same injection seam, so the whole lifecycle —
scale-up on backlog, voluntary scale-down on idle, crashed-worker lease
recovery, drain — is covered under both broker backends without paying
subprocess startup per test.
"""

from __future__ import annotations

import subprocess
import threading

import pytest

from repro.runner import BROKER_BACKENDS, ResultCache, SqliteBroker, TrialSpec, create_broker
from repro.experiments import EvaluationProtocol
from repro.runner.supervisor import Supervisor
from repro.runner.worker import run_worker

FAST = EvaluationProtocol(n_iterations=2, eval_every=2, n_seeds=2, dataset_scale=0.15)


def _spec(seed=0, framework="uncertainty", dataset="youtube"):
    return TrialSpec(framework=framework, dataset=dataset, seed=seed, protocol=FAST)


def _backdate_lease(broker, lease, seconds=3600.0):
    if isinstance(broker, SqliteBroker):
        with broker._tx() as conn:
            conn.execute(
                "UPDATE tasks SET heartbeat = heartbeat - ? WHERE key = ?",
                (seconds, lease.key),
            )
    else:
        import os

        stamp = lease.lease_path.stat().st_mtime - seconds
        os.utime(lease.lease_path, (stamp, stamp))


class _FakeHandle:
    """A 'worker' the tests park in any state they need."""

    def __init__(self):
        self.exit_code = None
        self.signals = []

    def poll(self):
        return self.exit_code

    def wait(self, timeout=None):
        if self.exit_code is None:
            raise subprocess.TimeoutExpired("fake-worker", timeout)
        return self.exit_code

    def send_signal(self, sig):
        self.signals.append(sig)

    def terminate(self):
        self.exit_code = -15


class _ThreadHandle:
    """A real worker loop on a thread, behind the WorkerHandle interface."""

    def __init__(self, worker_id, spool, cache_dir, backend):
        self._code = None

        def target():
            try:
                run_worker(
                    str(spool),
                    str(cache_dir),
                    idle_timeout=0.5,
                    poll_interval=0.05,
                    worker_id=worker_id,
                    quiet=True,
                    broker=backend,
                )
            except BaseException:
                self._code = 1
            else:
                self._code = 0

        self._thread = threading.Thread(target=target, daemon=True)
        self._thread.start()

    def poll(self):
        return None if self._thread.is_alive() else self._code

    def wait(self, timeout=None):
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise subprocess.TimeoutExpired("thread-worker", timeout)
        return self._code

    def send_signal(self, sig):
        pass  # threads retire via idle_timeout

    def terminate(self):
        pass


@pytest.fixture(params=BROKER_BACKENDS)
def backend(request):
    """The broker backend the fleet coordinates through."""
    return request.param


@pytest.fixture()
def queue(backend, tmp_path):
    """(backend, location, broker) for one shared queue."""
    location = tmp_path / "queue"
    return backend, location, create_broker(backend, location)


class TestScalingPolicy:
    def test_scale_up_on_backlog(self, queue, tmp_path):
        backend, location, broker = queue
        broker.enqueue_batch(
            [_spec(seed=seed, dataset=ds) for seed in range(10)
             for ds in ("youtube", "imdb")]
        )
        spawned = []

        def spawn(worker_id):
            spawned.append(worker_id)
            return _FakeHandle()

        supervisor = Supervisor(
            location, tmp_path / "cache", broker=broker,
            max_workers=8, tasks_per_worker=5, spawn=spawn, quiet=True,
        )
        summary = supervisor.step()
        # 20 pending / 5 per worker = 4 workers.
        assert summary["target"] == 4
        assert summary["spawned"] == 4
        assert len(spawned) == 4
        # A second tick with unchanged backlog spawns nothing new.
        assert supervisor.step()["spawned"] == 0
        assert supervisor.spawned_total == 4

    def test_wide_shallow_queue_gets_a_worker_per_shard(self, queue, tmp_path):
        backend, location, broker = queue
        broker.enqueue_batch(
            [_spec(dataset=ds) for ds in ("youtube", "imdb", "sms")]
        )
        supervisor = Supervisor(
            location, tmp_path / "cache", broker=broker,
            max_workers=8, tasks_per_worker=10,
            spawn=lambda worker_id: _FakeHandle(), quiet=True,
        )
        # Only 3 tasks (one per shard): depth alone says 1 worker, but each
        # backlogged shard can feed a claimant of its own.
        assert supervisor.step()["target"] == 3

    def test_max_workers_caps_the_fleet(self, queue, tmp_path):
        backend, location, broker = queue
        broker.enqueue_batch([_spec(seed=seed) for seed in range(50)])
        supervisor = Supervisor(
            location, tmp_path / "cache", broker=broker,
            max_workers=3, tasks_per_worker=1,
            spawn=lambda worker_id: _FakeHandle(), quiet=True,
        )
        summary = supervisor.step()
        assert summary["target"] == 3 and summary["live"] == 3

    def test_scale_down_on_idle_reaps_and_spawns_nothing(self, queue, tmp_path):
        backend, location, broker = queue
        broker.enqueue_batch([_spec(seed=seed) for seed in range(4)])
        handles = []

        def spawn(worker_id):
            handle = _FakeHandle()
            handles.append(handle)
            return handle

        supervisor = Supervisor(
            location, tmp_path / "cache", broker=broker,
            max_workers=4, tasks_per_worker=1, spawn=spawn, quiet=True,
        )
        supervisor.step()
        assert len(supervisor.workers) == 4
        # The queue drains and the workers retire themselves (idle timeout).
        for lease in broker.lease_batch("w", limit=4):
            broker.complete(lease)
        for handle in handles:
            handle.exit_code = 0
        summary = supervisor.step()
        assert summary["reaped"] == 4
        assert summary["spawned"] == 0
        assert summary["live"] == 0
        assert supervisor.drained()
        assert set(supervisor.reaped.values()) == {0}

    def test_min_workers_floor_holds_with_empty_queue(self, queue, tmp_path):
        backend, location, broker = queue
        supervisor = Supervisor(
            location, tmp_path / "cache", broker=broker,
            min_workers=2, max_workers=4,
            spawn=lambda worker_id: _FakeHandle(), quiet=True,
        )
        assert supervisor.step()["live"] == 2


class TestCrashRecovery:
    def test_crashed_worker_leases_are_re_offered(self, queue, tmp_path):
        backend, location, broker = queue
        broker.enqueue_batch([_spec(seed=seed) for seed in range(3)])
        # A worker claims everything and dies without releasing.
        crashed = create_broker(backend, location)
        leases = crashed.lease_batch("crashed", limit=3)
        assert len(leases) == 3
        for lease in leases:
            _backdate_lease(crashed, lease)
        supervisor = Supervisor(
            location, tmp_path / "cache", broker=broker,
            max_workers=2, spawn=lambda worker_id: _FakeHandle(), quiet=True,
        )
        summary = supervisor.step()
        assert summary["released"] == 3
        counts = broker.counts()
        assert counts["tasks"] == 3 and counts["leases"] == 0
        # The re-offered backlog immediately resizes the fleet.
        assert summary["spawned"] >= 1


class TestDrain:
    def test_drain_executes_everything_then_exits(self, queue, tmp_path):
        backend, location, broker = queue
        cache_dir = tmp_path / "cache"
        specs = [_spec(seed=seed) for seed in range(2)]
        broker.enqueue_batch(specs)
        supervisor = Supervisor(
            location, cache_dir, broker=broker,
            max_workers=2, tasks_per_worker=1, poll_interval=0.2,
            spawn=lambda worker_id: _ThreadHandle(
                worker_id, location, cache_dir, backend
            ),
            quiet=True,
        )
        supervisor.run(drain=True)
        assert supervisor.drained()
        assert supervisor.spawned_total == 2
        assert set(supervisor.reaped.values()) == {0}
        assert broker.counts() == {"tasks": 0, "leases": 0, "failed": 0, "corrupt": 0}
        cache = ResultCache(cache_dir)
        assert {spec.key for spec in specs} <= cache.keys_present(specs)

    def test_shutdown_signals_then_clears_the_fleet(self, queue, tmp_path):
        backend, location, broker = queue
        broker.enqueue_batch([_spec(seed=seed) for seed in range(4)])
        handles = []

        def spawn(worker_id):
            handle = _FakeHandle()
            handles.append(handle)
            return handle

        supervisor = Supervisor(
            location, tmp_path / "cache", broker=broker,
            max_workers=2, tasks_per_worker=1, spawn=spawn, quiet=True,
        )
        supervisor.step()
        assert len(handles) == 2
        # Workers exit promptly on the interrupt signal.
        for handle in handles:
            handle.exit_code = 130
        supervisor.shutdown(grace=1.0)
        import signal as _signal

        assert all(handle.signals == [_signal.SIGINT] for handle in handles)
        assert len(supervisor.workers) == 0
        assert set(supervisor.reaped.values()) == {130}
