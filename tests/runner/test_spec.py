"""Tests for TrialSpec content hashing."""

import pytest

from repro.core.config import ActiveDPConfig
from repro.experiments import EvaluationProtocol
from repro.runner import TrialSpec
from repro.runner.spec import canonical_value, digest

PROTOCOL = EvaluationProtocol(n_iterations=4, eval_every=2, n_seeds=1, dataset_scale=0.15)


def _spec(**overrides):
    params = dict(framework="uncertainty", dataset="youtube", seed=7, protocol=PROTOCOL)
    params.update(overrides)
    return TrialSpec(**params)


class TestKey:
    def test_identical_specs_share_key(self):
        assert _spec().key == _spec().key
        assert _spec() == _spec()
        assert hash(_spec()) == hash(_spec())

    def test_every_input_feeds_the_key(self):
        base = _spec()
        assert base.key != _spec(framework="activedp").key
        assert base.key != _spec(dataset="imdb").key
        assert base.key != _spec(seed=8).key
        assert base.key != _spec(protocol=EvaluationProtocol(n_iterations=5)).key
        assert base.key != _spec(pipeline_kwargs={"noise_rate": 0.1}).key

    def test_group_is_presentation_only(self):
        assert _spec(group="a").key == _spec(group="b").key

    def test_seed_scaleup_keeps_trial_keys(self):
        """Growing a grid from 1 to 5 seeds must not invalidate shared trials."""
        one = EvaluationProtocol(n_iterations=4, eval_every=2, n_seeds=1, dataset_scale=0.15)
        five = EvaluationProtocol(
            n_iterations=4, eval_every=2, n_seeds=5, base_seed=9, dataset_scale=0.15
        )
        assert _spec(protocol=one).key == _spec(protocol=five).key

    def test_equal_configs_share_key(self):
        first = _spec(pipeline_kwargs={"config": ActiveDPConfig(alpha=0.7)})
        second = _spec(pipeline_kwargs={"config": ActiveDPConfig(alpha=0.7)})
        different = _spec(pipeline_kwargs={"config": ActiveDPConfig(alpha=0.8)})
        assert first.key == second.key
        assert first.key != different.key

    def test_kwargs_order_is_irrelevant(self):
        first = _spec(pipeline_kwargs={"a": 1, "b": 2})
        second = _spec(pipeline_kwargs={"b": 2, "a": 1})
        assert first.key == second.key


class TestValidation:
    @pytest.mark.parametrize(
        "overrides", [{"framework": ""}, {"dataset": ""}, {"seed": -1}]
    )
    def test_invalid_specs_raise(self, overrides):
        with pytest.raises(ValueError):
            _spec(**overrides)


class TestCanonicalValue:
    def test_dataclasses_expand_by_field(self):
        encoded = canonical_value(ActiveDPConfig(alpha=0.25))
        assert encoded["__type__"] == "ActiveDPConfig"
        assert encoded["alpha"] == 0.25

    def test_digest_is_stable_for_nested_structures(self):
        payload = {"list": [1, (2, 3)], "none": None, "flag": True}
        assert digest(payload) == digest({"flag": True, "none": None, "list": [1, [2, 3]]})

    def test_large_arrays_do_not_collide(self):
        """Arrays with elided reprs must hash by content, not by repr."""
        import numpy as np

        first = np.zeros(1500)
        second = first.copy()
        second[750] = 1.0  # differs only in the repr-elided middle
        key_a = _spec(pipeline_kwargs={"prior": first}).key
        key_b = _spec(pipeline_kwargs={"prior": second}).key
        assert key_a != key_b

    def test_identity_repr_objects_are_rejected(self):
        class Opaque:
            pass

        with pytest.raises(TypeError):
            _spec(pipeline_kwargs={"thing": Opaque()}).key

    def test_sets_hash_order_independently(self, subprocess_env):
        """Set values must canonicalise identically across interpreter runs.

        Set iteration order is hash-randomised, so the digest is computed
        under several PYTHONHASHSEEDs in fresh interpreters.
        """
        import subprocess
        import sys

        code = (
            "from repro.runner.spec import digest;"
            "print(digest({'tags': {'alpha', 'beta', 'gamma', 1, 2}}))"
        )
        keys = set()
        for seed in (0, 1, 7):
            env = {**subprocess_env, "PYTHONHASHSEED": str(seed)}
            proc = subprocess.run(
                [sys.executable, "-c", code], capture_output=True, text=True, env=env
            )
            assert proc.returncode == 0, proc.stderr
            keys.add(proc.stdout.strip())
        assert len(keys) == 1
        # Sets and lists of the same elements stay distinct inputs.
        assert digest({"x": {1, 2}}) != digest({"x": [1, 2]})

    def test_reserved_sentinel_keys_are_rejected(self):
        """Dicts carrying the encoding sentinels must raise, not collide.

        Otherwise ``{'x': {'a'}}`` and ``{'x': {'__set__': ['a']}}`` would
        share one content key (same for ``__type__`` vs dataclasses).
        """
        with pytest.raises(TypeError, match="reserved"):
            canonical_value({"x": {"__set__": ["a"]}})
        with pytest.raises(TypeError, match="reserved"):
            canonical_value({"x": {"__type__": "ActiveDPConfig"}})

    def test_colliding_stringified_keys_are_rejected(self):
        """Keys that stringify identically must raise, not silently merge.

        Merging would give two distinct kwargs dicts one content key and
        serve one trial's cached result for the other.
        """
        with pytest.raises(TypeError, match="stringify"):
            canonical_value({1: "a", "1": "b"})
