"""Tests for TrialSpec content hashing."""

import pytest

from repro.core.config import ActiveDPConfig
from repro.experiments import EvaluationProtocol
from repro.runner import TrialSpec
from repro.runner.spec import canonical_value, digest

PROTOCOL = EvaluationProtocol(n_iterations=4, eval_every=2, n_seeds=1, dataset_scale=0.15)


def _spec(**overrides):
    params = dict(framework="uncertainty", dataset="youtube", seed=7, protocol=PROTOCOL)
    params.update(overrides)
    return TrialSpec(**params)


class TestKey:
    def test_identical_specs_share_key(self):
        assert _spec().key == _spec().key
        assert _spec() == _spec()
        assert hash(_spec()) == hash(_spec())

    def test_every_input_feeds_the_key(self):
        base = _spec()
        assert base.key != _spec(framework="activedp").key
        assert base.key != _spec(dataset="imdb").key
        assert base.key != _spec(seed=8).key
        assert base.key != _spec(protocol=EvaluationProtocol(n_iterations=5)).key
        assert base.key != _spec(pipeline_kwargs={"noise_rate": 0.1}).key

    def test_group_is_presentation_only(self):
        assert _spec(group="a").key == _spec(group="b").key

    def test_seed_scaleup_keeps_trial_keys(self):
        """Growing a grid from 1 to 5 seeds must not invalidate shared trials."""
        one = EvaluationProtocol(n_iterations=4, eval_every=2, n_seeds=1, dataset_scale=0.15)
        five = EvaluationProtocol(
            n_iterations=4, eval_every=2, n_seeds=5, base_seed=9, dataset_scale=0.15
        )
        assert _spec(protocol=one).key == _spec(protocol=five).key

    def test_equal_configs_share_key(self):
        first = _spec(pipeline_kwargs={"config": ActiveDPConfig(alpha=0.7)})
        second = _spec(pipeline_kwargs={"config": ActiveDPConfig(alpha=0.7)})
        different = _spec(pipeline_kwargs={"config": ActiveDPConfig(alpha=0.8)})
        assert first.key == second.key
        assert first.key != different.key

    def test_kwargs_order_is_irrelevant(self):
        first = _spec(pipeline_kwargs={"a": 1, "b": 2})
        second = _spec(pipeline_kwargs={"b": 2, "a": 1})
        assert first.key == second.key


class TestValidation:
    @pytest.mark.parametrize(
        "overrides", [{"framework": ""}, {"dataset": ""}, {"seed": -1}]
    )
    def test_invalid_specs_raise(self, overrides):
        with pytest.raises(ValueError):
            _spec(**overrides)


class TestCanonicalValue:
    def test_dataclasses_expand_by_field(self):
        encoded = canonical_value(ActiveDPConfig(alpha=0.25))
        assert encoded["__type__"] == "ActiveDPConfig"
        assert encoded["alpha"] == 0.25

    def test_digest_is_stable_for_nested_structures(self):
        payload = {"list": [1, (2, 3)], "none": None, "flag": True}
        assert digest(payload) == digest({"flag": True, "none": None, "list": [1, [2, 3]]})

    def test_large_arrays_do_not_collide(self):
        """Arrays with elided reprs must hash by content, not by repr."""
        import numpy as np

        first = np.zeros(1500)
        second = first.copy()
        second[750] = 1.0  # differs only in the repr-elided middle
        key_a = _spec(pipeline_kwargs={"prior": first}).key
        key_b = _spec(pipeline_kwargs={"prior": second}).key
        assert key_a != key_b

    def test_identity_repr_objects_are_rejected(self):
        class Opaque:
            pass

        with pytest.raises(TypeError):
            _spec(pipeline_kwargs={"thing": Opaque()}).key
