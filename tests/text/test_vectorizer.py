"""Tests for CountVectorizer and TfidfVectorizer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.text import CountVectorizer, TfidfVectorizer

DOCS = [
    "check out my channel for free money",
    "check the new spam filter",
    "what a beautiful song and melody",
    "this song brings back memories",
]


class TestCountVectorizer:
    def test_counts_match_occurrences(self):
        vectorizer = CountVectorizer()
        matrix = vectorizer.fit_transform(["spam spam ham", "ham"])
        names = vectorizer.get_feature_names()
        spam_col = names.index("spam")
        ham_col = names.index("ham")
        assert matrix[0, spam_col] == 2
        assert matrix[0, ham_col] == 1
        assert matrix[1, spam_col] == 0

    def test_binary_mode_caps_at_one(self):
        matrix = CountVectorizer(binary=True).fit_transform(["spam spam spam"])
        assert matrix.max() == 1.0

    def test_unknown_tokens_ignored_at_transform(self):
        vectorizer = CountVectorizer().fit(["known words only"])
        matrix = vectorizer.transform(["completely different vocabulary"])
        assert matrix.sum() == 0.0

    def test_matrix_shape(self):
        vectorizer = CountVectorizer()
        matrix = vectorizer.fit_transform(DOCS)
        assert matrix.shape == (len(DOCS), len(vectorizer.vocabulary_))

    def test_unfitted_transform_raises(self):
        with pytest.raises(RuntimeError):
            CountVectorizer().transform(["x"])

    def test_min_df_prunes(self):
        vectorizer = CountVectorizer(min_df=2).fit(DOCS)
        assert "song" in vectorizer.vocabulary_
        assert "melody" not in vectorizer.vocabulary_


class TestTfidfVectorizer:
    def test_rows_are_l2_normalised(self):
        matrix = TfidfVectorizer().fit_transform(DOCS)
        norms = np.linalg.norm(matrix, axis=1)
        np.testing.assert_allclose(norms[norms > 0], 1.0, atol=1e-9)

    def test_rare_terms_have_higher_idf(self):
        vectorizer = TfidfVectorizer().fit(DOCS)
        names = vectorizer.get_feature_names()
        idf = vectorizer.idf_
        assert idf[names.index("melody")] > idf[names.index("song")]

    def test_empty_document_row_is_zero(self):
        vectorizer = TfidfVectorizer().fit(DOCS)
        matrix = vectorizer.transform([""])
        np.testing.assert_allclose(matrix, 0.0)

    def test_unfitted_transform_raises(self):
        with pytest.raises(RuntimeError):
            TfidfVectorizer().transform(["x"])

    def test_values_non_negative(self):
        matrix = TfidfVectorizer().fit_transform(DOCS)
        assert matrix.min() >= 0.0


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.text(alphabet="abcdefg ", min_size=1, max_size=30),
        min_size=2,
        max_size=8,
    )
)
def test_tfidf_rows_unit_or_zero_property(documents):
    """Every TF-IDF row has L2 norm 1 (non-empty doc) or 0 (empty doc)."""
    try:
        matrix = TfidfVectorizer().fit_transform(documents)
    except ValueError:
        # Corpus with no valid tokens at all; nothing to check.
        return
    norms = np.linalg.norm(matrix, axis=1)
    for norm in norms:
        assert norm == pytest.approx(0.0, abs=1e-9) or norm == pytest.approx(1.0, abs=1e-6)
