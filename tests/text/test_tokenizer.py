"""Tests for the tokenizer and stop-word handling."""

import pytest
from hypothesis import given, strategies as st

from repro.text import STOP_WORDS, tokenize


class TestTokenize:
    def test_lowercases_and_splits(self):
        # "out" and "my" are stop words and are dropped by default.
        assert tokenize("Check OUT my Channel") == ["check", "channel"]
        assert tokenize("Check OUT Channel", remove_stop_words=False) == [
            "check", "out", "channel",
        ]

    def test_strips_punctuation_and_digits(self):
        assert tokenize("win $1000 prize!!!") == ["win", "prize"]

    def test_removes_stop_words_by_default(self):
        tokens = tokenize("this is the best song")
        assert "the" not in tokens
        assert "best" in tokens and "song" in tokens

    def test_keeps_stop_words_when_disabled(self):
        tokens = tokenize("this is the best", remove_stop_words=False)
        assert "the" in tokens

    def test_min_length_filter(self):
        assert tokenize("a ab abc", remove_stop_words=False, min_length=3) == ["abc"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_non_string_raises(self):
        with pytest.raises(TypeError):
            tokenize(123)

    def test_stop_words_are_lowercase(self):
        assert all(word == word.lower() for word in STOP_WORDS)


@given(st.text(max_size=200))
def test_tokens_are_clean_property(text):
    """Every token is lowercase, alphabetic, >= 2 chars and not a stop word."""
    for token in tokenize(text):
        assert token.isalpha()
        assert token == token.lower()
        assert len(token) >= 2
        assert token not in STOP_WORDS


@given(st.text(alphabet=st.characters(whitelist_categories=("Ll",)), max_size=50))
def test_tokenize_idempotent_on_own_output_property(text):
    """Re-tokenising the joined output returns the same tokens."""
    tokens = tokenize(text)
    assert tokenize(" ".join(tokens)) == tokens
