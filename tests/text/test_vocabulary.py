"""Tests for the Vocabulary container."""

import pytest

from repro.text import Vocabulary


DOCS = [
    ["spam", "check", "channel"],
    ["spam", "free", "money"],
    ["song", "love", "music"],
    ["song", "spam"],
]


class TestVocabulary:
    def test_contains_all_frequent_tokens(self):
        vocab = Vocabulary().fit(DOCS)
        assert "spam" in vocab and "song" in vocab

    def test_min_df_prunes_rare_tokens(self):
        vocab = Vocabulary(min_df=2).fit(DOCS)
        assert "spam" in vocab
        assert "check" not in vocab  # appears in a single document

    def test_max_features_keeps_most_frequent(self):
        vocab = Vocabulary(max_features=1).fit(DOCS)
        assert len(vocab) == 1
        assert "spam" in vocab  # highest document frequency (3)

    def test_index_token_roundtrip(self):
        vocab = Vocabulary().fit(DOCS)
        for token in vocab.tokens:
            assert vocab.token(vocab.index(token)) == token

    def test_document_frequency_counts_documents_not_occurrences(self):
        vocab = Vocabulary().fit([["dup", "dup", "dup"], ["dup"]])
        assert vocab.document_frequency["dup"] == 2

    def test_deterministic_ordering(self):
        first = Vocabulary().fit(DOCS).tokens
        second = Vocabulary().fit(DOCS).tokens
        assert first == second

    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            Vocabulary().fit([])

    def test_unknown_token_raises_keyerror(self):
        vocab = Vocabulary().fit(DOCS)
        with pytest.raises(KeyError):
            vocab.index("missing")

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            Vocabulary(min_df=0)
        with pytest.raises(ValueError):
            Vocabulary(max_features=0)
