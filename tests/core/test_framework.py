"""Tests for the ActiveDP framework orchestration."""

import numpy as np
import pytest

from repro.core import ActiveDP, ActiveDPConfig
from repro.labeling import ABSTAIN, KeywordLF
from repro.simulation import SimulatedUser


@pytest.fixture()
def framework(tiny_text_split):
    config = ActiveDPConfig.for_dataset_kind("text", min_labelpick_queries=5)
    return ActiveDP(tiny_text_split.train, tiny_text_split.valid, config, random_state=0)


@pytest.fixture()
def user(tiny_text_split):
    return SimulatedUser(tiny_text_split.train, random_state=0)


class TestTrainingLoop:
    def test_step_returns_iteration_record(self, framework, user):
        record = framework.step(user)
        assert record.iteration == 0
        assert 0 <= record.query_index < len(framework.train)
        assert framework.iteration == 1

    def test_lfs_accumulate_and_matrices_grow(self, framework, user):
        framework.run(user, 8)
        assert len(framework.lfs) > 0
        assert framework._train_matrix.shape == (len(framework.train), len(framework.lfs))
        assert framework._valid_matrix.shape == (len(framework.valid), len(framework.lfs))

    def test_queried_instances_are_unique(self, framework, user):
        framework.run(user, 15)
        assert len(framework.queried) == len(set(framework.queried))

    def test_pseudo_labels_match_query_instances(self, framework, user, tiny_text_split):
        framework.run(user, 10)
        pseudo = framework.pseudo
        assert len(pseudo) > 0
        # With the noise-free simulated user every pseudo-label is correct.
        assert pseudo.accuracy(tiny_text_split.train) == 1.0

    def test_run_rejects_nonpositive_iterations(self, framework, user):
        with pytest.raises(ValueError):
            framework.run(user, 0)

    def test_add_lf_manually(self, framework):
        framework.add_lf(KeywordLF("good", 0))
        assert len(framework.lfs) == 1
        assert framework._train_matrix.shape[1] == 1

    def test_exhausted_pool_raises(self, tiny_text_split):
        config = ActiveDPConfig.for_dataset_kind("text")
        framework = ActiveDP(tiny_text_split.train, tiny_text_split.valid, config, random_state=0)
        framework.queried = list(range(len(tiny_text_split.train)))
        with pytest.raises(RuntimeError):
            framework.select_query()


class TestInference:
    def test_aggregate_before_any_iteration_rejects_everything(self, framework):
        aggregated = framework.aggregate_labels()
        assert aggregated.coverage == 0.0
        assert np.all(aggregated.labels == ABSTAIN)

    def test_aggregated_labels_cover_training_pool(self, framework, user):
        framework.run(user, 20)
        aggregated = framework.aggregate_labels()
        assert aggregated.coverage > 0.3
        accepted = aggregated.accepted
        assert np.all(aggregated.labels[accepted] >= 0)
        np.testing.assert_allclose(aggregated.proba.sum(axis=1), 1.0, atol=1e-8)

    def test_generate_labels_consistent_with_aggregate(self, framework, user):
        framework.run(user, 15)
        indices, hard, soft = framework.generate_labels()
        aggregated = framework.aggregate_labels()
        np.testing.assert_array_equal(indices, np.flatnonzero(aggregated.accepted))
        np.testing.assert_array_equal(hard, aggregated.labels[indices])
        assert soft.shape == (len(indices), framework.n_classes)

    def test_end_model_beats_chance(self, framework, user, tiny_text_split):
        framework.run(user, 25)
        accuracy = framework.evaluate_end_model(tiny_text_split.test)
        assert accuracy > 0.6

    def test_label_quality_reports_coverage_and_accuracy(self, framework, user):
        framework.run(user, 20)
        quality = framework.label_quality()
        assert 0.0 <= quality["coverage"] <= 1.0
        assert 0.0 <= quality["accuracy"] <= 1.0

    def test_selected_lfs_is_subset_of_all_lfs(self, framework, user):
        framework.run(user, 20)
        assert set(framework.selected_lfs) <= set(framework.lfs)


class TestAblationSwitches:
    def test_without_confusion_labels_come_from_label_model_only(self, tiny_text_split):
        config = ActiveDPConfig.for_dataset_kind("text", use_confusion=False)
        framework = ActiveDP(tiny_text_split.train, tiny_text_split.valid, config, random_state=0)
        user = SimulatedUser(tiny_text_split.train, random_state=0)
        framework.run(user, 15)
        aggregated = framework.aggregate_labels()
        assert set(aggregated.source) <= {"lm", "rejected"}
        assert framework.threshold is None

    def test_without_labelpick_all_lfs_are_selected(self, tiny_text_split):
        config = ActiveDPConfig.for_dataset_kind("text", use_labelpick=False)
        framework = ActiveDP(tiny_text_split.train, tiny_text_split.valid, config, random_state=0)
        user = SimulatedUser(tiny_text_split.train, random_state=0)
        framework.run(user, 12)
        assert framework.selection.selected_indices == list(range(len(framework.lfs)))

    def test_custom_sampler_name(self, tiny_text_split):
        config = ActiveDPConfig.for_dataset_kind("text", sampler="passive")
        framework = ActiveDP(tiny_text_split.train, tiny_text_split.valid, config, random_state=0)
        assert framework.sampler.name == "passive"

    def test_retrain_every_reduces_refits(self, tiny_text_split):
        config = ActiveDPConfig.for_dataset_kind("text", retrain_every=5)
        framework = ActiveDP(tiny_text_split.train, tiny_text_split.valid, config, random_state=0)
        user = SimulatedUser(tiny_text_split.train, random_state=0)
        framework.run(user, 6)
        # The framework still produces a usable state after sparse refits.
        assert framework._train_matrix.shape[1] == len(framework.lfs)


class TestStaleStateEvaluation:
    """With retrain_every > 1, evaluation must flush dirty state first."""

    @staticmethod
    def _run(tiny_text_split, n_iterations, retrain_every):
        config = ActiveDPConfig.for_dataset_kind(
            "text", retrain_every=retrain_every, min_labelpick_queries=5
        )
        framework = ActiveDP(
            tiny_text_split.train, tiny_text_split.valid, config, random_state=0
        )
        user = SimulatedUser(tiny_text_split.train, random_state=0)
        framework.run(user, n_iterations)
        return framework

    def test_eval_at_non_boundary_iteration_flushes_dirty_state(self, tiny_text_split):
        # retrain_every=3 refits during steps 1, 4 and 7 (iterations 0, 3,
        # 6); after 8 steps the LF added at iteration 7 has not been seen by
        # any model.
        framework = self._run(tiny_text_split, 8, retrain_every=3)
        assert framework.state.lfs_dirty or framework.state.pseudo_dirty

        framework.aggregate_labels()
        assert not framework.state.lfs_dirty
        assert not framework.state.pseudo_dirty

    def test_flushed_aggregation_matches_explicit_refit(self, tiny_text_split):
        """Aggregating stale state equals refitting first — the regression pin."""
        framework = self._run(tiny_text_split, 8, retrain_every=3)
        assert framework.state.lfs_dirty or framework.state.pseudo_dirty

        twin = ActiveDP(
            tiny_text_split.train,
            tiny_text_split.valid,
            framework.config,
            random_state=0,
        )
        twin.restore(framework.snapshot())
        twin.refit()
        reference = twin.aggregate_labels()

        aggregated = framework.aggregate_labels()
        np.testing.assert_array_equal(aggregated.labels, reference.labels)
        np.testing.assert_array_equal(aggregated.accepted, reference.accepted)
        np.testing.assert_array_equal(aggregated.proba, reference.proba)
        assert aggregated.threshold == reference.threshold

    def test_label_quality_and_end_model_see_all_lfs(self, tiny_text_split):
        framework = self._run(tiny_text_split, 8, retrain_every=3)
        n_lfs = len(framework.lfs)
        framework.label_quality()
        # The flushed selection was computed over the full LF set.
        assert not framework.state.lfs_dirty
        assert len(framework.state.lfs) == n_lfs
        accuracy = framework.evaluate_end_model(tiny_text_split.test)
        assert 0.0 <= accuracy <= 1.0

    def test_flush_refits_are_attributed_to_the_evaluating_iteration(
        self, tiny_text_split
    ):
        """Counters in trial histories include evaluation-time flush refits."""
        from repro.experiments import EvaluationProtocol
        from repro.runner.executor import run_trial_on_split

        protocol = EvaluationProtocol(n_iterations=8, eval_every=4, n_seeds=1)
        history = run_trial_on_split(
            "activedp",
            tiny_text_split,
            protocol,
            seed=0,
            pipeline_kwargs={"config_overrides": {"retrain_every": 3}},
        )
        final = history.records[-1]
        # The final evaluation happens after the final step's record was
        # built; the flush refit it triggers must still land in the history.
        assert final.test_accuracy is not None
        assert final.lm_fits is not None and final.lm_fits > 0
        # A fresh identical run confirms the recorded counters match the
        # pipeline's end state (i.e. nothing was dropped after the snapshot).
        from repro.baselines import get_pipeline

        pipeline = get_pipeline(
            "activedp",
            tiny_text_split,
            random_state=0,
            config_overrides={"retrain_every": 3},
        )
        for _ in range(protocol.n_iterations):
            pipeline.step()
        pipeline.evaluate_end_model(C=protocol.end_model_C)
        pipeline.label_quality()
        assert final.lm_fits == pipeline.framework.state.lm_fits
        assert final.al_fits == pipeline.framework.state.al_fits
        assert final.lm_em_iterations == pipeline.framework.state.lm_em_iterations

    def test_retrain_every_one_behaviour_unchanged(self, tiny_text_split):
        """With per-step refits the flush is a no-op: no extra fits happen."""
        framework = self._run(tiny_text_split, 8, retrain_every=1)
        assert not framework.state.lfs_dirty
        assert not framework.state.pseudo_dirty
        fits_before = (
            framework.state.lm_fits,
            framework.state.al_fits,
            framework.state.labelpick.n_fits,
        )
        proba_before = framework._lm_proba_train.copy()
        framework.aggregate_labels()
        assert (
            framework.state.lm_fits,
            framework.state.al_fits,
            framework.state.labelpick.n_fits,
        ) == fits_before
        np.testing.assert_array_equal(framework._lm_proba_train, proba_before)


class TestTabularFramework:
    def test_runs_on_tabular_data(self, tiny_tabular_split):
        config = ActiveDPConfig.for_dataset_kind("tabular")
        framework = ActiveDP(tiny_tabular_split.train, tiny_tabular_split.valid, config, random_state=0)
        user = SimulatedUser(tiny_tabular_split.train, random_state=0)
        framework.run(user, 15)
        quality = framework.label_quality()
        assert quality["coverage"] > 0.2
        assert quality["accuracy"] > 0.6
