"""Tests for the ActiveDP framework orchestration."""

import numpy as np
import pytest

from repro.core import ActiveDP, ActiveDPConfig
from repro.labeling import ABSTAIN, KeywordLF
from repro.simulation import SimulatedUser


@pytest.fixture()
def framework(tiny_text_split):
    config = ActiveDPConfig.for_dataset_kind("text", min_labelpick_queries=5)
    return ActiveDP(tiny_text_split.train, tiny_text_split.valid, config, random_state=0)


@pytest.fixture()
def user(tiny_text_split):
    return SimulatedUser(tiny_text_split.train, random_state=0)


class TestTrainingLoop:
    def test_step_returns_iteration_record(self, framework, user):
        record = framework.step(user)
        assert record.iteration == 0
        assert 0 <= record.query_index < len(framework.train)
        assert framework.iteration == 1

    def test_lfs_accumulate_and_matrices_grow(self, framework, user):
        framework.run(user, 8)
        assert len(framework.lfs) > 0
        assert framework._train_matrix.shape == (len(framework.train), len(framework.lfs))
        assert framework._valid_matrix.shape == (len(framework.valid), len(framework.lfs))

    def test_queried_instances_are_unique(self, framework, user):
        framework.run(user, 15)
        assert len(framework.queried) == len(set(framework.queried))

    def test_pseudo_labels_match_query_instances(self, framework, user, tiny_text_split):
        framework.run(user, 10)
        pseudo = framework.pseudo
        assert len(pseudo) > 0
        # With the noise-free simulated user every pseudo-label is correct.
        assert pseudo.accuracy(tiny_text_split.train) == 1.0

    def test_run_rejects_nonpositive_iterations(self, framework, user):
        with pytest.raises(ValueError):
            framework.run(user, 0)

    def test_add_lf_manually(self, framework):
        framework.add_lf(KeywordLF("good", 0))
        assert len(framework.lfs) == 1
        assert framework._train_matrix.shape[1] == 1

    def test_exhausted_pool_raises(self, tiny_text_split):
        config = ActiveDPConfig.for_dataset_kind("text")
        framework = ActiveDP(tiny_text_split.train, tiny_text_split.valid, config, random_state=0)
        framework.queried = list(range(len(tiny_text_split.train)))
        with pytest.raises(RuntimeError):
            framework.select_query()


class TestInference:
    def test_aggregate_before_any_iteration_rejects_everything(self, framework):
        aggregated = framework.aggregate_labels()
        assert aggregated.coverage == 0.0
        assert np.all(aggregated.labels == ABSTAIN)

    def test_aggregated_labels_cover_training_pool(self, framework, user):
        framework.run(user, 20)
        aggregated = framework.aggregate_labels()
        assert aggregated.coverage > 0.3
        accepted = aggregated.accepted
        assert np.all(aggregated.labels[accepted] >= 0)
        np.testing.assert_allclose(aggregated.proba.sum(axis=1), 1.0, atol=1e-8)

    def test_generate_labels_consistent_with_aggregate(self, framework, user):
        framework.run(user, 15)
        indices, hard, soft = framework.generate_labels()
        aggregated = framework.aggregate_labels()
        np.testing.assert_array_equal(indices, np.flatnonzero(aggregated.accepted))
        np.testing.assert_array_equal(hard, aggregated.labels[indices])
        assert soft.shape == (len(indices), framework.n_classes)

    def test_end_model_beats_chance(self, framework, user, tiny_text_split):
        framework.run(user, 25)
        accuracy = framework.evaluate_end_model(tiny_text_split.test)
        assert accuracy > 0.6

    def test_label_quality_reports_coverage_and_accuracy(self, framework, user):
        framework.run(user, 20)
        quality = framework.label_quality()
        assert 0.0 <= quality["coverage"] <= 1.0
        assert 0.0 <= quality["accuracy"] <= 1.0

    def test_selected_lfs_is_subset_of_all_lfs(self, framework, user):
        framework.run(user, 20)
        assert set(framework.selected_lfs) <= set(framework.lfs)


class TestAblationSwitches:
    def test_without_confusion_labels_come_from_label_model_only(self, tiny_text_split):
        config = ActiveDPConfig.for_dataset_kind("text", use_confusion=False)
        framework = ActiveDP(tiny_text_split.train, tiny_text_split.valid, config, random_state=0)
        user = SimulatedUser(tiny_text_split.train, random_state=0)
        framework.run(user, 15)
        aggregated = framework.aggregate_labels()
        assert set(aggregated.source) <= {"lm", "rejected"}
        assert framework.threshold is None

    def test_without_labelpick_all_lfs_are_selected(self, tiny_text_split):
        config = ActiveDPConfig.for_dataset_kind("text", use_labelpick=False)
        framework = ActiveDP(tiny_text_split.train, tiny_text_split.valid, config, random_state=0)
        user = SimulatedUser(tiny_text_split.train, random_state=0)
        framework.run(user, 12)
        assert framework.selection.selected_indices == list(range(len(framework.lfs)))

    def test_custom_sampler_name(self, tiny_text_split):
        config = ActiveDPConfig.for_dataset_kind("text", sampler="passive")
        framework = ActiveDP(tiny_text_split.train, tiny_text_split.valid, config, random_state=0)
        assert framework.sampler.name == "passive"

    def test_retrain_every_reduces_refits(self, tiny_text_split):
        config = ActiveDPConfig.for_dataset_kind("text", retrain_every=5)
        framework = ActiveDP(tiny_text_split.train, tiny_text_split.valid, config, random_state=0)
        user = SimulatedUser(tiny_text_split.train, random_state=0)
        framework.run(user, 6)
        # The framework still produces a usable state after sparse refits.
        assert framework._train_matrix.shape[1] == len(framework.lfs)


class TestTabularFramework:
    def test_runs_on_tabular_data(self, tiny_tabular_split):
        config = ActiveDPConfig.for_dataset_kind("tabular")
        framework = ActiveDP(tiny_tabular_split.train, tiny_tabular_split.valid, config, random_state=0)
        user = SimulatedUser(tiny_tabular_split.train, random_state=0)
        framework.run(user, 15)
        quality = framework.label_quality()
        assert quality["coverage"] > 0.2
        assert quality["accuracy"] > 0.6
