"""Tests for run-history containers."""

import pytest

from repro.core import IterationRecord, RunHistory


class TestRunHistory:
    def _history(self):
        history = RunHistory(framework="activedp", dataset="youtube", seed=0)
        for i in range(1, 31):
            record = IterationRecord(iteration=i, query_index=i)
            if i % 10 == 0:
                record.test_accuracy = 0.5 + i / 100.0
            history.add(record)
        return history

    def test_counts_iterations(self):
        assert self._history().n_iterations == 30

    def test_evaluation_points(self):
        points = self._history().evaluation_points()
        assert points == [(10, 0.6), (20, 0.7), (30, 0.8)]

    def test_average_test_accuracy_is_mean_of_eval_points(self):
        assert self._history().average_test_accuracy() == pytest.approx(0.7)

    def test_final_test_accuracy(self):
        assert self._history().final_test_accuracy() == pytest.approx(0.8)

    def test_empty_history(self):
        history = RunHistory(framework="x", dataset="y", seed=1)
        assert history.average_test_accuracy() == 0.0
        assert history.final_test_accuracy() == 0.0
        assert history.evaluation_points() == []
