"""Tests for the LabelPick LF-selection method."""

import numpy as np
import pytest

from repro.core import LabelPick, LabelPickState
from repro.graphical import empirical_covariance
from repro.labeling import ABSTAIN, KeywordLF


def _make_lfs(n):
    return [KeywordLF(f"word{chr(97 + i)}", i % 2) for i in range(n)]


class TestAccuracyPruning:
    def test_prunes_worse_than_random_lfs(self, rng):
        n_valid = 200
        y_valid = rng.integers(0, 2, n_valid)
        good = np.where(rng.random(n_valid) < 0.9, y_valid, 1 - y_valid)
        bad = np.where(rng.random(n_valid) < 0.2, y_valid, 1 - y_valid)
        valid_matrix = np.column_stack([good, bad])
        lfs = _make_lfs(2)

        result = LabelPick().select(
            lfs, valid_matrix, y_valid,
            query_label_matrix=np.empty((0, 2), dtype=int),
            pseudo_labels=np.array([], dtype=int),
            n_classes=2,
        )
        assert 0 in result.selected_indices
        assert 1 not in result.selected_indices
        assert result.pruned_low_accuracy == [1]

    def test_never_firing_lf_is_kept(self, rng):
        y_valid = rng.integers(0, 2, 50)
        valid_matrix = np.column_stack([y_valid, np.full(50, ABSTAIN)])
        result = LabelPick().select(
            _make_lfs(2), valid_matrix, y_valid,
            np.empty((0, 2), dtype=int), np.array([], dtype=int), 2,
        )
        assert result.selected_indices == [0, 1]

    def test_all_bad_lfs_keeps_everything(self, rng):
        y_valid = rng.integers(0, 2, 100)
        bad = 1 - y_valid
        valid_matrix = np.column_stack([bad, bad])
        result = LabelPick().select(
            _make_lfs(2), valid_matrix, y_valid,
            np.empty((0, 2), dtype=int), np.array([], dtype=int), 2,
        )
        assert result.selected_indices == [0, 1]
        # The keep-all fallback must still report what failed pruning —
        # claiming nothing was pruned when everything was is a reporting bug.
        assert result.pruned_low_accuracy == [0, 1]


class TestStructureSelection:
    def test_redundant_lf_is_pruned_by_markov_blanket(self, rng):
        """An LF that is a copy of another should not both stay selected."""
        n_queries = 60
        pseudo = rng.integers(0, 2, n_queries)
        informative = pseudo.copy()
        duplicate = informative.copy()
        noise = rng.integers(0, 2, n_queries)
        query_matrix = np.column_stack([informative, duplicate, noise])

        n_valid = 200
        y_valid = rng.integers(0, 2, n_valid)
        # All three pass accuracy pruning on the validation set.
        valid_cols = [
            np.where(rng.random(n_valid) < 0.9, y_valid, 1 - y_valid) for _ in range(3)
        ]
        valid_matrix = np.column_stack(valid_cols)

        result = LabelPick(min_queries=8).select(
            _make_lfs(3), valid_matrix, y_valid, query_matrix, pseudo, 2
        )
        assert result.used_structure_learning
        assert len(result.selected_indices) >= 1
        assert 2 not in result.selected_indices or len(result.selected_indices) < 3

    def test_structure_learning_skipped_with_few_queries(self, rng):
        y_valid = rng.integers(0, 2, 50)
        valid_matrix = np.column_stack([y_valid, y_valid])
        query_matrix = np.array([[0, 1], [1, 0]])
        result = LabelPick(min_queries=8).select(
            _make_lfs(2), valid_matrix, y_valid, query_matrix, np.array([0, 1]), 2
        )
        assert not result.used_structure_learning
        assert result.selected_indices == [0, 1]

    def test_constant_query_matrix_keeps_survivors(self, rng):
        y_valid = rng.integers(0, 2, 50)
        valid_matrix = np.column_stack([y_valid, y_valid])
        query_matrix = np.zeros((20, 2), dtype=int)
        result = LabelPick(min_queries=8).select(
            _make_lfs(2), valid_matrix, y_valid, query_matrix, np.zeros(20, dtype=int), 2
        )
        assert result.selected_indices == [0, 1]


class TestIncrementalLabelPick:
    """Structure learning carried across calls via a LabelPickState."""

    @staticmethod
    def _scenario(rng, n_queries=30, n_lfs=6, n_valid=150):
        pseudo = rng.integers(0, 2, n_queries)
        query_matrix = np.column_stack([
            np.where(rng.random(n_queries) < 0.6 + 0.05 * j, pseudo, 1 - pseudo)
            for j in range(n_lfs)
        ])
        y_valid = rng.integers(0, 2, n_valid)
        valid_matrix = np.column_stack([
            np.where(rng.random(n_valid) < 0.9, y_valid, 1 - y_valid)
            for _ in range(n_lfs)
        ])
        return query_matrix, pseudo, valid_matrix, y_valid

    def test_stateful_matches_stateless_on_growing_inputs(self, rng):
        """Warm structure learning selects the same LFs as cold refits."""
        query_matrix, pseudo, valid_matrix, y_valid = self._scenario(rng)
        picker = LabelPick(min_queries=8)
        state = LabelPickState()
        for n_queries, n_lfs in [(12, 3), (20, 4), (30, 6)]:
            args = (
                _make_lfs(n_lfs),
                valid_matrix[:, :n_lfs],
                y_valid,
                query_matrix[:n_queries, :n_lfs],
                pseudo[:n_queries],
                2,
            )
            stateless = picker.select(*args)
            stateful = picker.select(*args, state=state)
            assert stateful.used_structure_learning
            assert stateful.selected_indices == stateless.selected_indices
        assert state.n_fits == 3
        # Every fit after the first resumes from the carried estimate.
        assert state.n_warm_fits == 2

    def test_state_covariance_tracks_full_layout(self, rng):
        """The accumulator matches the from-scratch covariance of [label|LFs]."""
        query_matrix, pseudo, valid_matrix, y_valid = self._scenario(rng)
        picker = LabelPick(min_queries=8)
        state = LabelPickState()
        for n_queries, n_lfs in [(15, 4), (30, 6)]:
            picker.select(
                _make_lfs(n_lfs),
                valid_matrix[:, :n_lfs],
                y_valid,
                query_matrix[:n_queries, :n_lfs],
                pseudo[:n_queries],
                2,
                state=state,
            )
        full = np.column_stack([pseudo, query_matrix]).astype(float)
        assert state.covariance.n_rows == 30
        assert state.covariance.n_features == 7
        np.testing.assert_allclose(
            state.covariance.covariance(), empirical_covariance(full), atol=1e-10
        )

    def test_first_stateful_fit_is_cold(self, rng):
        query_matrix, pseudo, valid_matrix, y_valid = self._scenario(rng)
        state = LabelPickState()
        LabelPick(min_queries=8).select(
            _make_lfs(6), valid_matrix, y_valid, query_matrix, pseudo, 2, state=state
        )
        assert state.n_fits == 1 and state.n_warm_fits == 0
        assert state.glasso_result is not None
        assert state.glasso_survivors is not None

    def test_survivor_churn_still_warm_starts(self, rng):
        """Dropping a survivor between calls intersection-maps the rest."""
        query_matrix, pseudo, valid_matrix, y_valid = self._scenario(rng)
        picker = LabelPick(min_queries=8)
        state = LabelPickState()
        picker.select(
            _make_lfs(6), valid_matrix, y_valid, query_matrix, pseudo, 2, state=state
        )
        # Make LF 0 fail accuracy pruning on the second call: its validation
        # column now votes against the truth.
        churned_valid = valid_matrix.copy()
        churned_valid[:, 0] = 1 - y_valid
        result = picker.select(
            _make_lfs(6), churned_valid, y_valid, query_matrix, pseudo, 2, state=state
        )
        assert 0 not in result.selected_indices
        assert state.n_fits == 2 and state.n_warm_fits == 1

    def test_stateless_calls_do_not_touch_state(self, rng):
        query_matrix, pseudo, valid_matrix, y_valid = self._scenario(rng)
        LabelPick(min_queries=8).select(
            _make_lfs(6), valid_matrix, y_valid, query_matrix, pseudo, 2
        )
        state = LabelPickState()
        assert state.covariance is None and state.glasso_result is None


class TestEdgeCases:
    def test_empty_lf_list(self):
        result = LabelPick().select(
            [], np.empty((10, 0), dtype=int), np.zeros(10, dtype=int),
            np.empty((0, 0), dtype=int), np.array([], dtype=int), 2,
        )
        assert result.selected_indices == []

    def test_column_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            LabelPick().select(
                _make_lfs(2), np.zeros((10, 3), dtype=int), np.zeros(10, dtype=int),
                np.zeros((5, 2), dtype=int), np.zeros(5, dtype=int), 2,
            )

    def test_invalid_constructor_arguments(self):
        with pytest.raises(ValueError):
            LabelPick(glasso_alpha=-1.0)
        with pytest.raises(ValueError):
            LabelPick(min_queries=1)

    def test_result_select_maps_indices_to_lfs(self):
        lfs = _make_lfs(3)
        from repro.core import LabelPickResult
        result = LabelPickResult(selected_indices=[0, 2])
        assert result.select(lfs) == [lfs[0], lfs[2]]
