"""Tests for TrainingState: snapshot/resume, dirty-flag refits, pseudo-label fix."""

import numpy as np
import pytest

from repro.core import ActiveDP, ActiveDPConfig
from repro.labeling import ABSTAIN, KeywordLF
from repro.labeling.lf import LambdaLF
from repro.simulation import SimulatedUser


@pytest.fixture()
def framework(tiny_text_split):
    config = ActiveDPConfig.for_dataset_kind("text", min_labelpick_queries=5)
    return ActiveDP(tiny_text_split.train, tiny_text_split.valid, config, random_state=0)


@pytest.fixture()
def user(tiny_text_split):
    return SimulatedUser(tiny_text_split.train, random_state=0)


def _fingerprint(framework):
    return (
        list(framework.queried),
        [lf.name for lf in framework.lfs],
        framework.pseudo.labels.tolist(),
        framework.selection.selected_indices,
        framework.threshold,
    )


class TestSnapshotResume:
    def test_restore_replays_identically(self, framework, user, tiny_text_split):
        framework.run(user, 5)
        snapshot = framework.snapshot()
        framework.run(user, 5)
        first = _fingerprint(framework)

        framework.restore(snapshot)
        resumed_user = SimulatedUser(tiny_text_split.train, random_state=0)
        # Replay the user's RNG to the snapshot point: the user is external
        # to the framework, so its stream is the caller's responsibility.
        for index in framework.queried:
            resumed_user.design_lf(index)
        framework.run(resumed_user, 5)
        assert _fingerprint(framework) == first

    def test_snapshot_is_isolated_from_further_steps(self, framework, user):
        framework.run(user, 4)
        snapshot = framework.snapshot()
        n_lfs = len(snapshot.lfs)
        n_queried = len(snapshot.queried)
        framework.run(user, 4)
        assert len(snapshot.lfs) == n_lfs
        assert len(snapshot.queried) == n_queried

    def test_restore_defends_against_caller_mutation(self, framework, user):
        framework.run(user, 3)
        snapshot = framework.snapshot()
        framework.restore(snapshot)
        snapshot.queried.append(-123)
        assert -123 not in framework.queried


class TestDirtyFlagRefit:
    def test_flags_clear_after_refit(self, framework, user):
        framework.step(user)
        assert not framework.state.lfs_dirty
        assert not framework.state.pseudo_dirty

    def test_incremental_refit_matches_forced_refit(self, framework, user):
        """Skipped stages hold exactly the values a full recompute produces."""
        framework.run(user, 12)
        before = (
            None if framework._lm_proba_train is None else framework._lm_proba_train.copy(),
            None if framework._al_proba_train is None else framework._al_proba_train.copy(),
            framework.threshold,
            list(framework.selection.selected_indices),
        )
        framework.refit(force=True)
        after = (
            framework._lm_proba_train,
            framework._al_proba_train,
            framework.threshold,
            list(framework.selection.selected_indices),
        )
        assert before[3] == after[3]
        assert before[2] == after[2]
        for cached, recomputed in zip(before[:2], after[:2]):
            if cached is None:
                assert recomputed is None
            else:
                np.testing.assert_array_equal(cached, recomputed)

    def test_noop_refit_skips_model_fits(self, framework, user):
        framework.run(user, 6)

        class Exploder:
            def __getattr__(self, name):
                raise AssertionError("label model must not be refit without new inputs")

        framework.state.label_model = Exploder()
        lm_before = framework._lm_proba_train
        framework.refit()  # nothing dirty: every stage must be skipped
        assert framework._lm_proba_train is lm_before


class TestPseudoLabelPropagation:
    def _scripted_framework(self, tiny_text_split, queries):
        config = ActiveDPConfig.for_dataset_kind("text", min_labelpick_queries=5)
        framework = ActiveDP(
            tiny_text_split.train, tiny_text_split.valid, config, random_state=0
        )
        iterator = iter(queries)
        framework.select_query = lambda: next(iterator)
        return framework

    class _FixedLFUser:
        def __init__(self, lf):
            self.lf = lf

        def design_lf(self, query_index):
            return self.lf

    def test_duplicate_lf_reports_its_own_output(self, tiny_text_split):
        lf = KeywordLF("good", 0)
        outputs = lf.apply(tiny_text_split.train)
        fires = int(np.flatnonzero(outputs != ABSTAIN)[0])
        abstains = int(np.flatnonzero(outputs == ABSTAIN)[0])
        framework = self._scripted_framework(tiny_text_split, [fires, abstains])
        user = self._FixedLFUser(lf)

        first = framework.step(user)
        assert first.pseudo_label == int(outputs[fires])

        # Same LF again on an instance it abstains on: the record must say
        # ABSTAIN, not echo the previous iteration's pseudo-label.
        second = framework.step(user)
        assert second.pseudo_label == ABSTAIN

    def test_new_lf_abstaining_on_its_query_reports_abstain(self, tiny_text_split):
        lf = KeywordLF("good", 0)
        silent = LambdaLF(lambda instance: ABSTAIN, name="silent")
        outputs = lf.apply(tiny_text_split.train)
        fires = int(np.flatnonzero(outputs != ABSTAIN)[0])
        framework = self._scripted_framework(tiny_text_split, [fires, fires + 1])

        first = framework.step(self._FixedLFUser(lf))
        assert first.pseudo_label == int(outputs[fires])

        # A brand-new LF that abstains on its own query instance: the old
        # code read pseudo.labels[-1] and reported the stale label above.
        second = framework.step(self._FixedLFUser(silent))
        assert second.pseudo_label == ABSTAIN
