"""Tests for the ConFusion label-aggregation method (Eq. 1 and threshold tuning)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ConFusion
from repro.labeling import ABSTAIN


AL = np.array([[0.9, 0.1], [0.6, 0.4], [0.55, 0.45], [0.2, 0.8]])
LM = np.array([[0.3, 0.7], [0.8, 0.2], [0.1, 0.9], [0.5, 0.5]])
COVERED = np.array([True, True, False, False])


class TestAggregate:
    def test_high_confidence_uses_al_model(self):
        result = ConFusion().aggregate(AL, LM, COVERED, threshold=0.7)
        assert result.source[0] == "al"
        assert result.labels[0] == 0
        assert result.source[3] == "al"
        assert result.labels[3] == 1

    def test_low_confidence_covered_uses_label_model(self):
        result = ConFusion().aggregate(AL, LM, COVERED, threshold=0.7)
        assert result.source[1] == "lm"
        assert result.labels[1] == 0

    def test_low_confidence_uncovered_is_rejected(self):
        result = ConFusion().aggregate(AL, LM, COVERED, threshold=0.7)
        assert result.source[2] == "rejected"
        assert result.labels[2] == ABSTAIN
        assert not result.accepted[2]

    def test_zero_threshold_always_uses_al(self):
        result = ConFusion().aggregate(AL, LM, COVERED, threshold=0.0)
        assert list(result.source) == ["al"] * 4
        assert result.coverage == 1.0

    def test_threshold_above_one_never_uses_al(self):
        result = ConFusion().aggregate(AL, LM, COVERED, threshold=1.01)
        assert "al" not in set(result.source)
        np.testing.assert_array_equal(result.accepted, COVERED)

    def test_proba_of_rejected_rows_is_uniform(self):
        result = ConFusion().aggregate(AL, LM, COVERED, threshold=0.99)
        np.testing.assert_allclose(result.proba[2], 0.5)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            ConFusion().aggregate(AL, LM[:2], COVERED, 0.5)
        with pytest.raises(ValueError):
            ConFusion().aggregate(AL, LM, COVERED[:2], 0.5)

    def test_invalid_objective_raises(self):
        with pytest.raises(ValueError):
            ConFusion(objective="f1")


class TestThresholdTuning:
    def test_candidate_thresholds_include_boundaries(self):
        thresholds = ConFusion().candidate_thresholds(AL)
        assert thresholds[0] == 0.0
        assert thresholds[-1] == 1.0

    def test_tuned_threshold_prefers_accurate_model(self):
        # AL model is perfect, label model is garbage -> tuned threshold
        # should be low enough that the AL model is used everywhere.
        y_valid = np.array([0, 0, 1, 1])
        al = np.array([[0.9, 0.1], [0.8, 0.2], [0.1, 0.9], [0.2, 0.8]])
        lm = np.array([[0.1, 0.9], [0.2, 0.8], [0.9, 0.1], [0.8, 0.2]])
        covered = np.ones(4, dtype=bool)
        confusion = ConFusion()
        threshold = confusion.tune_threshold(al, lm, covered, y_valid)
        aggregated = confusion.aggregate(al, lm, covered, threshold)
        assert np.all(aggregated.labels == y_valid)

    def test_tuned_threshold_prefers_label_model_when_al_is_bad(self):
        y_valid = np.array([0, 0, 1, 1])
        al = np.array([[0.1, 0.9], [0.2, 0.8], [0.9, 0.1], [0.8, 0.2]])  # wrong
        lm = np.array([[0.9, 0.1], [0.8, 0.2], [0.1, 0.9], [0.2, 0.8]])  # right
        covered = np.ones(4, dtype=bool)
        confusion = ConFusion()
        threshold = confusion.tune_threshold(al, lm, covered, y_valid)
        aggregated = confusion.aggregate(al, lm, covered, threshold)
        accuracy = np.mean(aggregated.labels[aggregated.accepted] == y_valid[aggregated.accepted])
        assert accuracy == 1.0

    def test_coverage_objective_selects_zero_threshold(self):
        y_valid = np.array([0, 1, 0, 1])
        confusion = ConFusion(objective="coverage")
        threshold = confusion.tune_threshold(AL, LM, COVERED, y_valid)
        assert threshold == 0.0

    def test_tune_and_aggregate_pipeline(self):
        y_valid = np.array([0, 0, 1, 1])
        result = ConFusion().tune_and_aggregate(AL, LM, COVERED, y_valid, AL, LM, COVERED)
        assert result.labels.shape == (4,)
        assert 0.0 <= result.threshold <= 1.0


def _tune_threshold_naive(confusion, al_proba, lm_proba, covered, y_valid):
    """The original O(U * n) reference: one full aggregate per candidate."""
    from repro.models.metrics import accuracy_score

    y_valid = np.asarray(y_valid, dtype=int)
    best_threshold = 0.0
    best_score = -np.inf
    for threshold in confusion.candidate_thresholds(al_proba):
        aggregated = confusion.aggregate(al_proba, lm_proba, covered, threshold)
        if confusion.objective == "accuracy":
            if not np.any(aggregated.accepted):
                score = 0.0
            else:
                score = accuracy_score(
                    y_valid[aggregated.accepted],
                    aggregated.labels[aggregated.accepted],
                )
        else:
            score = aggregated.coverage
        if score > best_score + 1e-12:
            best_score = score
            best_threshold = float(threshold)
    return best_threshold


class TestSweepMatchesNaiveTuning:
    @pytest.mark.parametrize("objective", ["accuracy", "coverage"])
    def test_fixed_case(self, objective):
        y_valid = np.array([0, 1, 0, 1])
        confusion = ConFusion(objective=objective)
        assert confusion.tune_threshold(AL, LM, COVERED, y_valid) == pytest.approx(
            _tune_threshold_naive(confusion, AL, LM, COVERED, y_valid)
        )

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.sampled_from(["accuracy", "coverage"]),
        st.booleans(),
    )
    def test_random_cases(self, n, seed, objective, tie_heavy):
        """The incremental sweep picks exactly the naive loop's threshold."""
        rng = np.random.default_rng(seed)
        if tie_heavy:
            # Quantised probabilities produce many duplicate confidences and
            # exact score ties, stressing the tie-breaking path.
            al = rng.integers(1, 5, size=(n, 2)).astype(float)
            al /= al.sum(axis=1, keepdims=True)
        else:
            al = rng.dirichlet([1.0, 1.0], size=n)
        lm = rng.dirichlet([1.0, 1.0], size=n)
        covered = rng.random(n) < 0.6
        y_valid = rng.integers(0, 2, n)
        confusion = ConFusion(objective=objective)
        fast = confusion.tune_threshold(al, lm, covered, y_valid)
        naive = _tune_threshold_naive(confusion, al, lm, covered, y_valid)
        assert fast == naive

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            ConFusion().tune_threshold(AL, LM[:2], COVERED, np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            ConFusion().tune_threshold(AL, LM, COVERED[:2], np.zeros(4, dtype=int))


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=40),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_aggregation_partition_property(n, threshold, seed):
    """Every instance is exactly one of: AL-labelled, LM-labelled, rejected."""
    rng = np.random.default_rng(seed)
    al = rng.dirichlet([1.0, 1.0], size=n)
    lm = rng.dirichlet([1.0, 1.0], size=n)
    covered = rng.random(n) < 0.6
    result = ConFusion().aggregate(al, lm, covered, threshold)
    sources = set(result.source)
    assert sources <= {"al", "lm", "rejected"}
    assert np.all((result.labels == ABSTAIN) == ~result.accepted)
    # Rejected instances are exactly the uncovered + unconfident ones.
    expected_rejected = (~covered) & (al.max(axis=1) < threshold)
    np.testing.assert_array_equal(result.source == "rejected", expected_rejected)


class TestCandidateSetIsSingleSourceOfTruth:
    """tune_threshold must sweep exactly candidate_thresholds (satellite fix)."""

    def test_tuning_routes_through_public_candidate_method(self):
        calls = []

        class Spy(ConFusion):
            def candidate_thresholds(self, al_proba_valid):
                candidates = super().candidate_thresholds(al_proba_valid)
                calls.append(candidates)
                return candidates

        y_valid = np.array([0, 1, 0, 1])
        Spy().tune_threshold(AL, LM, COVERED, y_valid)
        assert len(calls) == 1

    def test_chosen_threshold_is_a_published_candidate(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            n = int(rng.integers(2, 40))
            al = rng.dirichlet([1.0, 1.0], size=n)
            lm = rng.dirichlet([1.0, 1.0], size=n)
            covered = rng.random(n) < 0.6
            y_valid = rng.integers(0, 2, n)
            confusion = ConFusion()
            chosen = confusion.tune_threshold(al, lm, covered, y_valid)
            assert chosen in confusion.candidate_thresholds(al)

    def test_restricting_candidates_restricts_tuning(self):
        """Overriding the public method visibly changes what tuning sweeps."""

        class OnlyBoundaries(ConFusion):
            def candidate_thresholds(self, al_proba_valid):
                return np.array([0.0, 1.0])

        y_valid = np.array([0, 1, 0, 1])
        chosen = OnlyBoundaries().tune_threshold(AL, LM, COVERED, y_valid)
        assert chosen in (0.0, 1.0)
