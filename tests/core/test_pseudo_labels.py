"""Tests for pseudo-labelled subset curation."""

import numpy as np
import pytest

from repro.core import PseudoLabeledSet
from repro.labeling import ABSTAIN, KeywordLF


class TestPseudoLabeledSet:
    def test_records_lf_output_on_query_instance(self, tiny_text_split):
        train = tiny_text_split.train
        lf = KeywordLF("good", 0)
        outputs = lf.apply(train)
        query = int(np.flatnonzero(outputs != ABSTAIN)[0])

        pseudo = PseudoLabeledSet()
        label = pseudo.add(query, lf, train)
        assert label == 0
        assert len(pseudo) == 1
        assert pseudo.indices[0] == query
        assert pseudo.labels[0] == 0

    def test_abstaining_lf_records_nothing(self, tiny_text_split):
        train = tiny_text_split.train
        lf = KeywordLF("good", 0)
        outputs = lf.apply(train)
        query = int(np.flatnonzero(outputs == ABSTAIN)[0])

        pseudo = PseudoLabeledSet()
        assert pseudo.add(query, lf, train) == ABSTAIN
        assert len(pseudo) == 0

    def test_add_direct(self):
        pseudo = PseudoLabeledSet()
        pseudo.add_direct(5, 1)
        assert pseudo.indices.tolist() == [5]
        assert pseudo.labels.tolist() == [1]
        with pytest.raises(ValueError):
            pseudo.add_direct(6, ABSTAIN)

    def test_features_align_with_indices(self, tiny_text_split):
        train = tiny_text_split.train
        pseudo = PseudoLabeledSet()
        pseudo.add_direct(3, 1)
        pseudo.add_direct(7, 0)
        features = pseudo.features(train)
        np.testing.assert_array_equal(features[0], train.features[3])
        np.testing.assert_array_equal(features[1], train.features[7])

    def test_empty_set_features_shape(self, tiny_text_split):
        pseudo = PseudoLabeledSet()
        features = pseudo.features(tiny_text_split.train)
        assert features.shape == (0, tiny_text_split.train.n_features)
        assert pseudo.accuracy(tiny_text_split.train) == 0.0

    def test_n_classes_observed(self):
        pseudo = PseudoLabeledSet()
        pseudo.add_direct(0, 1)
        assert pseudo.n_classes_observed() == 1
        pseudo.add_direct(1, 0)
        assert pseudo.n_classes_observed() == 2

    def test_accuracy_against_ground_truth(self, tiny_text_split):
        train = tiny_text_split.train
        pseudo = PseudoLabeledSet()
        pseudo.add_direct(0, int(train.labels[0]))          # correct
        pseudo.add_direct(1, int(1 - train.labels[1]))      # wrong
        assert pseudo.accuracy(train) == pytest.approx(0.5)
