"""Tests for ActiveDPConfig."""

import pytest

from repro.core import ActiveDPConfig


class TestActiveDPConfig:
    def test_defaults_enable_both_techniques(self):
        config = ActiveDPConfig()
        assert config.use_labelpick and config.use_confusion
        assert config.sampler == "adp"

    def test_for_text_uses_alpha_half(self):
        assert ActiveDPConfig.for_dataset_kind("text").alpha == 0.5

    def test_for_tabular_uses_alpha_099(self):
        assert ActiveDPConfig.for_dataset_kind("tabular").alpha == 0.99

    def test_for_dataset_kind_accepts_overrides(self):
        config = ActiveDPConfig.for_dataset_kind("text", use_confusion=False, sampler="passive")
        assert not config.use_confusion
        assert config.sampler == "passive"
        assert config.alpha == 0.5

    def test_invalid_kind_raises(self):
        with pytest.raises(ValueError):
            ActiveDPConfig.for_dataset_kind("images")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 1.5},
            {"glasso_alpha": -0.1},
            {"al_model_C": 0.0},
            {"retrain_every": 0},
            {"min_labelpick_queries": 1},
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ValueError):
            ActiveDPConfig(**kwargs)
