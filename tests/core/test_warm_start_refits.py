"""Tests for warm-started label-model refits wired through the framework."""

import numpy as np
import pytest

from repro.core import ActiveDP, ActiveDPConfig
from repro.label_models import get_label_model
from repro.simulation import SimulatedUser


def _framework(tiny_text_split, **overrides):
    config = ActiveDPConfig.for_dataset_kind(
        "text", min_labelpick_queries=5, **overrides
    )
    return ActiveDP(
        tiny_text_split.train, tiny_text_split.valid, config, random_state=0
    )


def _run(tiny_text_split, n_iterations, **overrides):
    framework = _framework(tiny_text_split, **overrides)
    user = SimulatedUser(tiny_text_split.train, random_state=0)
    framework.run(user, n_iterations)
    return framework


class TestWarmColdEquivalence:
    def test_headline_metrics_within_tol_and_fewer_em_iterations(self, tiny_text_split):
        cold = _run(tiny_text_split, 25, warm_start_label_model=False)
        warm = _run(tiny_text_split, 25, warm_start_label_model=True)

        assert warm.state.lm_em_iterations < cold.state.lm_em_iterations
        cold_quality = cold.label_quality()
        warm_quality = warm.label_quality()
        assert abs(warm_quality["accuracy"] - cold_quality["accuracy"]) <= 0.05
        assert abs(warm_quality["coverage"] - cold_quality["coverage"]) <= 0.05
        # The trajectory (queries, LFs) is driven by the same seeds; warm
        # starts change EM internals, not what gets queried or selected.
        assert warm.queried[:10] == cold.queried[:10]

    def test_warm_start_actually_triggers(self, tiny_text_split):
        warm = _run(tiny_text_split, 25, warm_start_label_model=True)
        assert warm.state.label_model is not None
        assert warm.state.lm_fit_selection == list(warm.selection.selected_indices)

    def test_cold_flag_reproduces_cold_start_fit_bitwise(self, tiny_text_split):
        """With the flag off every refit is a cold fit of the selected columns."""
        framework = _run(tiny_text_split, 20, warm_start_label_model=False)
        state = framework.state
        selected = list(state.selection.selected_indices)
        assert selected

        reference = get_label_model(
            framework.config.label_model,
            n_classes=framework.n_classes,
            backend=framework.config.backend,
            early_stop=framework.config.adaptive_early_stop,
        )
        reference.fit(state.train_matrix.columns(selected))
        np.testing.assert_array_equal(
            state.lm_proba_train,
            reference.predict_proba(state.train_matrix.columns(selected)),
        )
        assert not getattr(state.label_model, "warm_started_", True)

    def test_forced_refit_with_unchanged_selection_keeps_probas(self, tiny_text_split):
        for warm in (False, True):
            framework = _run(tiny_text_split, 15, warm_start_label_model=warm)
            before = framework._lm_proba_train.copy()
            framework.refit(force=True)
            np.testing.assert_array_equal(framework._lm_proba_train, before)


class TestSnapshotRoundTrip:
    def test_snapshot_restores_carried_fit(self, tiny_text_split):
        framework = _run(tiny_text_split, 15, warm_start_label_model=True)
        snapshot = framework.snapshot()
        assert snapshot.lm_fit_selection == framework.state.lm_fit_selection
        assert snapshot.lm_em_iterations == framework.state.lm_em_iterations

        # Continue the original; the snapshot's carried fit must not move.
        user = SimulatedUser(tiny_text_split.train, random_state=1)
        fit_selection = list(snapshot.lm_fit_selection)
        em_iterations = snapshot.lm_em_iterations
        framework.run(user, 5)
        assert snapshot.lm_fit_selection == fit_selection
        assert snapshot.lm_em_iterations == em_iterations

    def test_restored_run_replays_identically_with_warm_start(self, tiny_text_split):
        framework = _framework(tiny_text_split, warm_start_label_model=True)
        user = SimulatedUser(tiny_text_split.train, random_state=0)
        framework.run(user, 10)
        # Drain a second user's RNG to the 10-step point for the replay below.
        replay_user = SimulatedUser(tiny_text_split.train, random_state=0)
        for index in framework.queried:
            replay_user.design_lf(index)

        snapshot = framework.snapshot()
        framework.run(user, 5)
        first = (
            list(framework.queried),
            framework.state.lm_fit_selection,
            framework.state.lm_em_iterations,
            framework.threshold,
        )

        framework.restore(snapshot)
        framework.run(replay_user, 5)
        second = (
            list(framework.queried),
            framework.state.lm_fit_selection,
            framework.state.lm_em_iterations,
            framework.threshold,
        )
        assert first == second

    def test_carried_model_is_deep_copied(self, tiny_text_split):
        framework = _run(tiny_text_split, 15, warm_start_label_model=True)
        snapshot = framework.snapshot()
        model = framework.state.label_model
        snapshot_model = snapshot.label_model
        assert model is not snapshot_model
        if hasattr(model, "accuracies_"):
            np.testing.assert_array_equal(model.accuracies_, snapshot_model.accuracies_)


class TestIntersectionMappedFrameworkWarmStarts:
    def test_post_first_lm_refits_are_nearly_all_warm(self, tiny_text_split):
        """LabelPick churn no longer forces cold starts: any overlap warms.

        Only the first fit and fits on a fully *disjoint* selection (possible
        in the first couple of iterations, when the selection is a single LF
        that gets swapped) may stay cold — under the superset-only rule about
        half of the early refits were.
        """
        framework = _run(tiny_text_split, 30, warm_start_label_model=True)
        state = framework.state
        assert state.lm_fits > 1
        warm_rate = state.lm_warm_fits / (state.lm_fits - 1)
        assert warm_rate >= 0.9

    def test_cold_flag_never_warm_starts(self, tiny_text_split):
        framework = _run(tiny_text_split, 30, warm_start_label_model=False)
        assert framework.state.lm_fits > 1
        assert framework.state.lm_warm_fits == 0


class TestAllKnobsEquivalence:
    """All three warm-start knobs on vs off on the same seeded run."""

    ALL_ON = dict(
        warm_start_label_model=True,
        warm_start_labelpick=True,
        warm_start_al_model=True,
    )
    ALL_OFF = dict(
        warm_start_label_model=False,
        warm_start_labelpick=False,
        warm_start_al_model=False,
    )

    def test_end_label_quality_within_tol_and_all_paths_warm(self, tiny_text_split):
        warm = _run(tiny_text_split, 30, **self.ALL_ON)
        cold = _run(tiny_text_split, 30, **self.ALL_OFF)

        warm_quality = warm.label_quality()
        cold_quality = cold.label_quality()
        # Warm starts change optimisation trajectories (EM/L-BFGS paths,
        # glasso iterates within solver tolerance), not the models — the
        # aggregated label quality must agree tightly.
        assert abs(warm_quality["accuracy"] - cold_quality["accuracy"]) <= 0.05
        assert abs(warm_quality["coverage"] - cold_quality["coverage"]) <= 0.05

        state = warm.state
        # Post-first fits warm except on fully disjoint selections (rare and
        # legitimate — there is nothing to carry over).
        assert state.lm_warm_fits / (state.lm_fits - 1) >= 0.9
        assert state.al_warm_fits >= state.al_fits - 1
        assert state.labelpick.n_fits > 1
        # Post-first glasso fits warm except when the positive-definiteness
        # guard falls back to a cold seed (rare and by design).
        assert state.labelpick.n_warm_fits / (state.labelpick.n_fits - 1) >= 0.9
        assert state.lm_em_iterations < cold.state.lm_em_iterations

    def test_all_off_reproduces_historical_state(self, tiny_text_split):
        """Knobs off: no warm machinery runs and no carried state is built."""
        cold = _run(tiny_text_split, 25, **self.ALL_OFF)
        state = cold.state
        assert state.lm_warm_fits == 0
        assert state.al_warm_fits == 0
        assert state.labelpick.n_fits == 0
        assert state.labelpick.covariance is None
        assert state.labelpick.glasso_result is None
        assert not getattr(state.al_model, "warm_started_", False)

    def test_all_off_runs_are_deterministically_identical(self, tiny_text_split):
        first = _run(tiny_text_split, 20, **self.ALL_OFF)
        second = _run(tiny_text_split, 20, **self.ALL_OFF)
        assert first.queried == second.queried
        assert (
            first.selection.selected_indices == second.selection.selected_indices
        )
        np.testing.assert_array_equal(first._lm_proba_train, second._lm_proba_train)
        np.testing.assert_array_equal(first._al_proba_train, second._al_proba_train)

    def test_labelpick_state_survives_snapshot_round_trip(self, tiny_text_split):
        framework = _run(tiny_text_split, 20, **self.ALL_ON)
        snapshot = framework.snapshot()
        assert snapshot.labelpick is not framework.state.labelpick
        assert snapshot.labelpick.n_fits == framework.state.labelpick.n_fits
        before = framework.state.labelpick.n_fits
        user = SimulatedUser(tiny_text_split.train, random_state=1)
        framework.run(user, 5)
        # The snapshot's carried structure-learning state must not move.
        assert snapshot.labelpick.n_fits == before


class TestWarmFitCounters:
    def test_records_carry_cumulative_counters(self, tiny_text_split):
        framework = _framework(tiny_text_split)
        user = SimulatedUser(tiny_text_split.train, random_state=0)
        records = framework.run(user, 15)
        for family in ("lm", "al", "glasso"):
            counters = [getattr(r, f"{family}_fits") for r in records]
            warm = [getattr(r, f"{family}_warm_fits") for r in records]
            assert all(c is not None for c in counters)
            assert counters == sorted(counters)
            assert all(w <= c for w, c in zip(warm, counters))
        assert records[-1].lm_fits == framework.state.lm_fits
        assert records[-1].glasso_fits == framework.state.labelpick.n_fits


class TestEmIterationAccounting:
    def test_records_carry_cumulative_em_iterations(self, tiny_text_split):
        framework = _framework(tiny_text_split, warm_start_label_model=True)
        user = SimulatedUser(tiny_text_split.train, random_state=0)
        records = framework.run(user, 10)
        counters = [r.lm_em_iterations for r in records]
        assert all(c is not None for c in counters)
        assert counters == sorted(counters)
        assert counters[-1] == framework.state.lm_em_iterations
        assert counters[-1] > 0
