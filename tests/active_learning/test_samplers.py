"""Tests for the query-selection strategies."""

import numpy as np
import pytest

from repro.active_learning import (
    ADPSampler,
    BaseSampler,
    CoreSetSampler,
    DensityWeightedSampler,
    LALSampler,
    MarginSampler,
    PassiveSampler,
    QueryByCommitteeSampler,
    QueryContext,
    SEUSampler,
    UncertaintySampler,
    get_sampler,
    prediction_entropy,
)
from repro.labeling import ABSTAIN

ALL_SAMPLER_NAMES = ["passive", "uncertainty", "margin", "qbc", "coreset",
                     "density", "lal", "seu", "adp"]


def _context(dataset, rng, al_proba=None, lm_proba=None, queried=(), labels=()):
    candidates = np.setdiff1d(np.arange(len(dataset)), np.asarray(queried, dtype=int))
    return QueryContext(
        dataset=dataset,
        candidates=candidates,
        al_proba=al_proba,
        lm_proba=lm_proba,
        queried_indices=np.asarray(queried, dtype=int),
        queried_labels=np.asarray(labels, dtype=int),
        rng=rng,
    )


def _peaked_proba(n, n_classes=2, uncertain_index=None):
    proba = np.zeros((n, n_classes))
    proba[:, 0] = 0.95
    proba[:, 1] = 0.05
    if uncertain_index is not None:
        proba[uncertain_index] = 1.0 / n_classes
    return proba


class TestPredictionEntropy:
    def test_uniform_has_maximum_entropy(self):
        proba = np.array([[0.5, 0.5], [0.9, 0.1], [1.0, 0.0]])
        entropy = prediction_entropy(proba)
        assert entropy[0] > entropy[1] > entropy[2]
        assert entropy[0] == pytest.approx(np.log(2))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            prediction_entropy(np.array([0.5, 0.5]))


class TestRegistry:
    @pytest.mark.parametrize("name", ALL_SAMPLER_NAMES)
    def test_get_sampler(self, name):
        assert isinstance(get_sampler(name), BaseSampler)

    def test_unknown_sampler_raises(self):
        with pytest.raises(ValueError):
            get_sampler("bogus")


@pytest.mark.parametrize("name", ALL_SAMPLER_NAMES)
class TestSelectionContract:
    def test_selected_index_is_a_candidate(self, name, tiny_text_split, rng):
        train = tiny_text_split.train
        proba = rng.dirichlet([1, 1], size=len(train))
        queried = [0, 1, 2, 3, 4]
        labels = [0, 1, 0, 1, 0]
        context = _context(train, rng, al_proba=proba, lm_proba=proba,
                           queried=queried, labels=labels)
        choice = get_sampler(name).select(context)
        assert choice in context.candidates

    def test_works_without_any_model(self, name, tiny_text_split, rng):
        context = _context(tiny_text_split.train, rng)
        choice = get_sampler(name).select(context)
        assert choice in context.candidates


class TestUncertaintySampler:
    def test_picks_most_uncertain(self, tiny_text_split, rng):
        train = tiny_text_split.train
        proba = _peaked_proba(len(train), uncertain_index=17)
        context = _context(train, rng, al_proba=proba)
        assert UncertaintySampler().select(context) == 17

    def test_falls_back_to_label_model_proba(self, tiny_text_split, rng):
        train = tiny_text_split.train
        proba = _peaked_proba(len(train), uncertain_index=23)
        context = _context(train, rng, lm_proba=proba)
        assert UncertaintySampler().select(context) == 23


class TestMarginSampler:
    def test_picks_smallest_margin(self, tiny_text_split, rng):
        train = tiny_text_split.train
        proba = _peaked_proba(len(train), uncertain_index=9)
        context = _context(train, rng, al_proba=proba)
        assert MarginSampler().select(context) == 9


class TestADPSampler:
    def test_alpha_one_follows_al_model_only(self, tiny_text_split, rng):
        train = tiny_text_split.train
        al = _peaked_proba(len(train), uncertain_index=5)
        lm = _peaked_proba(len(train), uncertain_index=30)
        context = _context(train, rng, al_proba=al, lm_proba=lm)
        assert ADPSampler(alpha=1.0).select(context) == 5

    def test_alpha_zero_follows_label_model_only(self, tiny_text_split, rng):
        train = tiny_text_split.train
        al = _peaked_proba(len(train), uncertain_index=5)
        lm = _peaked_proba(len(train), uncertain_index=30)
        context = _context(train, rng, al_proba=al, lm_proba=lm)
        assert ADPSampler(alpha=0.0).select(context) == 30

    def test_balanced_alpha_prefers_jointly_uncertain(self, tiny_text_split, rng):
        train = tiny_text_split.train
        al = _peaked_proba(len(train))
        lm = _peaked_proba(len(train))
        al[7] = [0.5, 0.5]
        lm[7] = [0.5, 0.5]
        al[12] = [0.5, 0.5]   # only AL uncertain here
        context = _context(train, rng, al_proba=al, lm_proba=lm)
        assert ADPSampler(alpha=0.5).select(context) == 7

    def test_invalid_alpha_raises(self):
        with pytest.raises(ValueError):
            ADPSampler(alpha=1.5)

    def test_missing_models_falls_back_to_random(self, tiny_text_split, rng):
        context = _context(tiny_text_split.train, rng)
        assert ADPSampler().select(context) in context.candidates


class TestCoreSetSampler:
    def test_avoids_already_queried_neighbourhood(self, rng):
        from repro.datasets.base import Dataset
        features = np.vstack([np.zeros((5, 2)), np.full((1, 2), 10.0)])
        dataset = Dataset(features, np.zeros(6, dtype=int), n_classes=2)
        context = _context(dataset, rng, queried=[0], labels=[0])
        assert CoreSetSampler().select(context) == 5


class TestQueryByCommittee:
    def test_random_before_two_classes_observed(self, tiny_text_split, rng):
        context = _context(tiny_text_split.train, rng, queried=[0], labels=[1])
        assert QueryByCommitteeSampler().select(context) in context.candidates

    def test_invalid_members_raise(self):
        with pytest.raises(ValueError):
            QueryByCommitteeSampler(n_lr_members=0)


class TestDensitySampler:
    def test_invalid_beta_raises(self):
        with pytest.raises(ValueError):
            DensityWeightedSampler(beta=-1)


class TestSEUSampler:
    def test_prefers_docs_with_high_coverage_keywords(self, tiny_text_split, rng):
        train = tiny_text_split.train
        # With uniform uncertainty, SEU scores reduce to keyword coverage.
        lm = np.full((len(train), 2), 0.5)
        context = _context(train, rng, lm_proba=lm)
        choice = SEUSampler().select(context)
        assert choice in context.candidates
        assert len(train.token_sets[choice]) > 0

    def test_tabular_falls_back_to_uncertainty(self, tiny_tabular_split, rng):
        train = tiny_tabular_split.train
        proba = _peaked_proba(len(train), uncertain_index=3)
        context = _context(train, rng, al_proba=proba)
        assert SEUSampler().select(context) == 3


class TestLALSampler:
    def test_uses_uncertainty_fallback_with_few_labels(self, tiny_text_split, rng):
        train = tiny_text_split.train
        proba = _peaked_proba(len(train), uncertain_index=11)
        context = _context(train, rng, al_proba=proba, queried=[0, 1], labels=[0, 1])
        assert LALSampler().select(context) == 11

    def test_learned_mode_selects_valid_candidate(self, tiny_text_split, rng):
        train = tiny_text_split.train
        proba = rng.dirichlet([1, 1], size=len(train))
        queried = list(range(12))
        labels = [train.labels[i] for i in queried]
        context = _context(train, rng, al_proba=proba, queried=queried, labels=labels)
        choice = LALSampler(n_episodes=6, min_labeled=8).select(context)
        assert choice in context.candidates

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            LALSampler(n_episodes=0)
        with pytest.raises(ValueError):
            LALSampler(ridge=0.0)


class TestQueryContext:
    def test_requires_candidates(self, tiny_text_split, rng):
        with pytest.raises(ValueError):
            QueryContext(dataset=tiny_text_split.train, candidates=np.array([]), rng=rng)
