"""Tests for label-function abstractions."""

import numpy as np
import pytest

from repro.labeling import ABSTAIN, KeywordLF, LambdaLF, ThresholdLF


class TestKeywordLF:
    def test_fires_on_documents_containing_keyword(self, tiny_text_split):
        train = tiny_text_split.train
        lf = KeywordLF("good", label=0)
        outputs = lf.apply(train)
        fired = outputs != ABSTAIN
        assert np.any(fired)
        for i in np.flatnonzero(fired):
            assert "good" in train.token_sets[i]
        for i in np.flatnonzero(~fired):
            assert "good" not in train.token_sets[i]

    def test_emits_configured_label(self, tiny_text_split):
        outputs = KeywordLF("bad", label=1).apply(tiny_text_split.train)
        assert set(outputs.tolist()) <= {ABSTAIN, 1}

    def test_equality_and_hash(self):
        assert KeywordLF("x", 1) == KeywordLF("x", 1)
        assert KeywordLF("x", 1) != KeywordLF("x", 0)
        assert len({KeywordLF("x", 1), KeywordLF("x", 1)}) == 1

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            KeywordLF("", 1)
        with pytest.raises(ValueError):
            KeywordLF("word", -2)


class TestThresholdLF:
    def test_ge_operator(self, tiny_tabular_split):
        train = tiny_tabular_split.train
        value = float(np.median(train.raw_features[:, 0]))
        outputs = ThresholdLF(0, value, ">=", 1).apply(train)
        fires = train.raw_features[:, 0] >= value
        np.testing.assert_array_equal(outputs != ABSTAIN, fires)
        assert set(outputs[fires].tolist()) == {1}

    def test_le_operator(self, tiny_tabular_split):
        train = tiny_tabular_split.train
        value = float(np.median(train.raw_features[:, 1]))
        outputs = ThresholdLF(1, value, "<=", 0).apply(train)
        fires = train.raw_features[:, 1] <= value
        np.testing.assert_array_equal(outputs != ABSTAIN, fires)

    def test_equality_and_hash(self):
        assert ThresholdLF(0, 1.0, ">=", 1) == ThresholdLF(0, 1.0, ">=", 1)
        assert ThresholdLF(0, 1.0, ">=", 1) != ThresholdLF(0, 1.0, "<=", 1)

    def test_invalid_operator_raises(self):
        with pytest.raises(ValueError):
            ThresholdLF(0, 1.0, ">", 1)

    def test_invalid_feature_raises(self):
        with pytest.raises(ValueError):
            ThresholdLF(-1, 1.0, ">=", 1)


class TestLambdaLF:
    def test_wraps_callable_over_instances(self, tiny_text_split):
        train = tiny_text_split.train
        lf = LambdaLF(lambda text: 1 if "bad" in text else ABSTAIN, name="contains-bad")
        outputs = lf.apply(train)
        assert outputs.shape == (len(train),)
        assert set(outputs.tolist()) <= {ABSTAIN, 1}

    def test_non_callable_raises(self):
        with pytest.raises(TypeError):
            LambdaLF("not-callable", name="x")
