"""Tests for label-matrix construction."""

import numpy as np
import pytest

from repro.labeling import ABSTAIN, KeywordLF, apply_lfs, label_matrix_from_outputs
from repro.labeling.label_matrix import coverage_mask


class TestApplyLFs:
    def test_shape_matches_lfs_and_instances(self, tiny_text_split):
        train = tiny_text_split.train
        lfs = [KeywordLF("good", 0), KeywordLF("bad", 1), KeywordLF("great", 0)]
        matrix = apply_lfs(lfs, train)
        assert matrix.shape == (len(train), 3)

    def test_columns_match_individual_application(self, tiny_text_split):
        train = tiny_text_split.train
        lfs = [KeywordLF("good", 0), KeywordLF("awful", 1)]
        matrix = apply_lfs(lfs, train)
        for j, lf in enumerate(lfs):
            np.testing.assert_array_equal(matrix[:, j], lf.apply(train))

    def test_empty_lf_list_gives_zero_columns(self, tiny_text_split):
        matrix = apply_lfs([], tiny_text_split.train)
        assert matrix.shape == (len(tiny_text_split.train), 0)


class TestLabelMatrixFromOutputs:
    def test_stacks_columns(self):
        a = np.array([0, 1, ABSTAIN])
        b = np.array([ABSTAIN, 1, 1])
        matrix = label_matrix_from_outputs([a, b])
        assert matrix.shape == (3, 2)
        np.testing.assert_array_equal(matrix[:, 0], a)

    def test_empty_list_raises(self):
        with pytest.raises(ValueError):
            label_matrix_from_outputs([])

    def test_inconsistent_lengths_raise(self):
        with pytest.raises(ValueError):
            label_matrix_from_outputs([np.array([0, 1]), np.array([1])])


class TestCoverageMask:
    def test_identifies_covered_rows(self):
        matrix = np.array([[ABSTAIN, ABSTAIN], [0, ABSTAIN], [ABSTAIN, 1]])
        np.testing.assert_array_equal(coverage_mask(matrix), [False, True, True])

    def test_zero_column_matrix_is_uncovered(self):
        assert not coverage_mask(np.empty((4, 0), dtype=int)).any()
