"""Tests for LF analysis statistics."""

import numpy as np
import pytest

from repro.labeling import ABSTAIN, LFAnalysis


MATRIX = np.array(
    [
        [0, ABSTAIN, 0],
        [0, 1, ABSTAIN],
        [ABSTAIN, 1, 1],
        [ABSTAIN, ABSTAIN, ABSTAIN],
    ]
)
Y_TRUE = np.array([0, 1, 1, 0])


class TestLFAnalysis:
    def test_coverage_per_lf(self):
        coverage = LFAnalysis(MATRIX).coverage()
        np.testing.assert_allclose(coverage, [0.5, 0.5, 0.5])

    def test_overall_coverage(self):
        assert LFAnalysis(MATRIX).overall_coverage() == pytest.approx(0.75)

    def test_overlap(self):
        overlap = LFAnalysis(MATRIX).overlap()
        # Row 0 overlaps LFs 0 & 2; row 1 overlaps LFs 0 & 1; row 2 overlaps 1 & 2.
        np.testing.assert_allclose(overlap, [0.5, 0.5, 0.5])

    def test_conflict(self):
        conflict = LFAnalysis(MATRIX).conflict()
        # Only row 1 has a disagreement (LF0 says 0, LF1 says 1).
        np.testing.assert_allclose(conflict, [0.25, 0.25, 0.0])

    def test_accuracies_with_gold_labels(self):
        accuracies = LFAnalysis(MATRIX).accuracies(Y_TRUE)
        np.testing.assert_allclose(accuracies, [0.5, 1.0, 1.0])

    def test_accuracy_of_never_firing_lf_is_zero(self):
        matrix = np.full((3, 1), ABSTAIN)
        assert LFAnalysis(matrix).accuracies(np.zeros(3, dtype=int))[0] == 0.0

    def test_summary_structure(self):
        summaries = LFAnalysis(MATRIX, lf_names=["a", "b", "c"]).summary(Y_TRUE)
        assert [s.name for s in summaries] == ["a", "b", "c"]
        assert summaries[1].polarity == (1,)
        assert summaries[0].n_labeled == 2
        assert summaries[1].accuracy == pytest.approx(1.0)

    def test_summary_without_gold_labels_has_none_accuracy(self):
        summaries = LFAnalysis(MATRIX).summary()
        assert all(s.accuracy is None for s in summaries)

    def test_name_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            LFAnalysis(MATRIX, lf_names=["only-one"])

    def test_empty_matrix(self):
        analysis = LFAnalysis(np.empty((5, 0), dtype=int))
        assert analysis.overall_coverage() == 0.0
        assert analysis.coverage().shape == (0,)
