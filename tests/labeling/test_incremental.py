"""Tests for the incrementally grown label matrix."""

import copy

import numpy as np
import pytest

from repro.labeling import ABSTAIN, IncrementalLabelMatrix, KeywordLF, apply_lfs
from repro.labeling.lf import LabelFunction


class CountingLF(LabelFunction):
    """LF that counts how often it is applied (for cache tests)."""

    def __init__(self, keyword: str, label: int):
        self.inner = KeywordLF(keyword, label)
        self.name = f"counting[{keyword}]->{label}"
        self.applications = 0

    def apply(self, dataset):
        self.applications += 1
        return self.inner.apply(dataset)


@pytest.fixture()
def lfs(tiny_text_split):
    words = ["good", "great", "bad", "awful"]
    return [KeywordLF(word, i % 2) for i, word in enumerate(words)]


class TestEquivalenceWithHstackPath:
    def test_matches_apply_lfs_after_each_append(self, tiny_text_split, lfs):
        """The column store equals the old hstack construction at every size."""
        dataset = tiny_text_split.train
        store = IncrementalLabelMatrix(dataset, initial_capacity=1)
        reference = np.empty((len(dataset), 0), dtype=int)
        for lf in lfs:
            column = store.append(lf)
            reference = np.hstack([reference, lf.apply(dataset).reshape(-1, 1)])
            np.testing.assert_array_equal(store.matrix, reference)
            np.testing.assert_array_equal(column, reference[:, -1])
        np.testing.assert_array_equal(store.matrix, apply_lfs(lfs, dataset))

    def test_columns_and_rows_match_fancy_indexing(self, tiny_text_split, lfs):
        dataset = tiny_text_split.train
        store = IncrementalLabelMatrix(dataset)
        for lf in lfs:
            store.append(lf)
        full = apply_lfs(lfs, dataset)
        np.testing.assert_array_equal(store.columns([0, 2]), full[:, [0, 2]])
        np.testing.assert_array_equal(store.rows([5, 1, 9]), full[[5, 1, 9]])

    def test_boolean_masks_are_rejected(self, tiny_text_split, lfs):
        """A mask coerced to int would silently select columns 0/1."""
        store = IncrementalLabelMatrix(tiny_text_split.train)
        for lf in lfs:
            store.append(lf)
        mask = [True] + [False] * (len(lfs) - 1)
        with pytest.raises(TypeError, match="mask"):
            store.columns(mask)
        with pytest.raises(TypeError, match="mask"):
            store.rows([True, False])


class TestGrowthAndViews:
    def test_amortised_geometric_growth(self, tiny_text_split, lfs):
        store = IncrementalLabelMatrix(tiny_text_split.train, initial_capacity=1, growth_factor=2.0)
        capacities = []
        for lf in lfs:
            store.append(lf)
            capacities.append(store.capacity)
        assert capacities == [1, 2, 4, 4]
        assert store.n_cols == len(lfs)
        assert store.matrix.shape == (len(tiny_text_split.train), len(lfs))

    def test_matrix_view_is_read_only(self, tiny_text_split, lfs):
        store = IncrementalLabelMatrix(tiny_text_split.train)
        store.append(lfs[0])
        with pytest.raises(ValueError):
            store.matrix[0, 0] = 1

    def test_invalid_parameters_raise(self, tiny_text_split):
        with pytest.raises(ValueError):
            IncrementalLabelMatrix(tiny_text_split.train, initial_capacity=0)
        with pytest.raises(ValueError):
            IncrementalLabelMatrix(tiny_text_split.train, growth_factor=1.0)


class TestApplyCache:
    def test_repeated_apply_hits_cache(self, tiny_text_split):
        lf = CountingLF("good", 0)
        store = IncrementalLabelMatrix(tiny_text_split.train)
        first = store.apply(lf)
        second = store.apply(lf)
        store.append(lf)
        assert lf.applications == 1
        np.testing.assert_array_equal(first, second)

    def test_bad_lf_output_shape_raises(self, tiny_text_split):
        class BrokenLF(LabelFunction):
            name = "broken"

            def apply(self, dataset):
                return np.array([ABSTAIN])

        store = IncrementalLabelMatrix(tiny_text_split.train)
        with pytest.raises(ValueError):
            store.apply(BrokenLF())


class TestSnapshotSemantics:
    def test_deepcopy_shares_dataset_but_not_buffer(self, tiny_text_split, lfs):
        store = IncrementalLabelMatrix(tiny_text_split.train)
        store.append(lfs[0])
        clone = copy.deepcopy(store)
        assert clone.dataset is store.dataset
        clone.append(lfs[1])
        assert store.n_cols == 1
        assert clone.n_cols == 2
        np.testing.assert_array_equal(store.matrix, clone.matrix[:, :1])
