"""End-to-end HTTP lifecycle: cold submit → worker → poll, warm repeat.

The acceptance contract of the serving layer, pinned over a real socket
under BOTH broker backends:

* a cold request is enqueued exactly once, executed by a real worker loop,
  and the polled response is byte-identical to a direct engine run of the
  same spec;
* an immediate repeat is served warm from the result store with zero new
  broker enqueues;
* an indexed key whose blob read misses is never re-executed.
"""

from __future__ import annotations

import pytest

from repro.runner import BROKER_BACKENDS, run_trial
from repro.serving.schemas import canonical_json, label_payload, parse_label_request

LFS = [
    {"type": "keyword", "keyword": "check", "label": 1},
    {"type": "keyword", "keyword": "subscribe", "label": 1},
    {"type": "keyword", "keyword": "song", "label": 0},
]


def _body(seed=0):
    return {"dataset": "youtube", "lfs": LFS, "scale": 0.15, "seed": seed}


@pytest.mark.parametrize("backend", BROKER_BACKENDS)
def test_cold_then_warm_lifecycle(harness_factory, backend):
    harness = harness_factory(broker=backend)
    client = harness.client

    status, payload, _ = client.post("/label", _body())
    assert status == 202
    assert payload["status"] == "pending"
    key = payload["key"]

    # Exactly one enqueue; a coalesced duplicate adds nothing to the queue.
    status, dup, _ = client.post("/label", _body())
    assert status == 202
    assert dup["coalesced"] is True
    _, stats, _ = client.get("/stats")
    assert stats["requests"]["enqueued"] == 1
    assert stats["requests"]["coalesced"] == 1

    harness.start_worker(max_trials=1)
    status, done, _ = harness.poll_until_done(key)
    assert status == 200
    assert done["status"] == "done"
    harness.join_workers()

    # Byte-identity with a direct engine run of the canonicalised spec.
    spec = parse_label_request(_body())
    assert spec.key == key
    expected = canonical_json(label_payload(spec, run_trial(spec)))
    assert client.raw("GET", f"/label/{key}") == expected

    # Warm repeat: full payload immediately, no new enqueue, no admission.
    status, warm, _ = client.post("/label", _body())
    assert status == 200
    assert warm == done
    _, stats, _ = client.get("/stats")
    assert stats["requests"]["enqueued"] == 1
    assert stats["requests"]["warm_hits"] == 1
    assert stats["admission"]["inflight"] == 0
    assert stats["jobs"] == {"pending": 0, "done": 1, "failed": 0}


def test_indexed_key_never_reexecutes(harness_factory):
    harness = harness_factory(results="indexed")
    client = harness.client

    status, payload, _ = client.post("/label", _body())
    assert status == 202
    key = payload["key"]
    harness.start_worker(max_trials=1)
    harness.poll_until_done(key)
    harness.join_workers()

    # Simulate the blob lagging the index (e.g. still landing on a shared
    # filesystem): the run-history index still knows the key, so a fresh
    # service must register the job without re-enqueueing it.
    spec = parse_label_request(_body())
    harness.service.store.path_for(spec).unlink()

    fresh = harness_factory(results="indexed")
    # Point the fresh service's store/broker at the first harness's state.
    fresh.service.store = harness.service.store
    fresh.service.broker = harness.service.broker
    status, payload, _ = fresh.client.post("/label", _body())
    assert status == 202
    assert payload["indexed"] is True
    _, stats, _ = fresh.client.get("/stats")
    assert stats["requests"]["index_hits"] == 1
    assert stats["requests"]["enqueued"] == 0
    assert harness.service.broker.counts().get("pending", 0) == 0


def test_worker_failure_surfaces_as_500(harness_factory):
    harness = harness_factory()
    client = harness.client
    body = {"dataset": "no-such-dataset", "lfs": LFS}
    status, payload, _ = client.post("/label", body)
    assert status == 202
    # A failed trial never counts toward max_trials; idle out quickly.
    harness.start_worker(idle_timeout=1.0)
    status, payload, _ = harness.poll_until_done(payload["key"])
    assert status == 500
    assert payload["status"] == "failed"
    assert payload["error"]["error"]
    _, stats, _ = client.get("/stats")
    assert stats["jobs"]["failed"] == 1
    assert stats["admission"]["inflight"] == 0


def test_request_validation_and_unknown_routes(harness_factory):
    harness = harness_factory()
    client = harness.client
    assert client.post("/label", {"dataset": "youtube"})[0] == 400
    assert client.post("/label", {"dataset": "youtube", "lfs": []})[0] == 400
    assert client.post("/label", {**_body(), "bogus": 1})[0] == 400
    assert client.post("/label", {"dataset": "youtube", "lfs": [{"type": "?"}]})[0] == 400
    assert client.get("/label/deadbeef")[0] == 404
    assert client.get("/no/such/route")[0] == 404
    assert client.post("/label/extra/segments")[0] == 404

    status, payload, _ = client.get("/healthz")
    assert (status, payload) == (200, {"status": "ok"})
