"""Concurrency stress: 8 threads hammer admission and one shared session.

Pins the three safety properties of the serving layer under contention:

* the in-flight cap is never exceeded (``peak_inflight`` proves it);
* every request reaches exactly one terminal outcome — a result, a
  failure, or an immediate 429 — nothing is silently dropped or queued
  twice;
* a session hammered concurrently is never corrupted: each request either
  fully lands (200) or is fully rejected (429), and the final state is a
  consistent function of the landed requests.
"""

from __future__ import annotations

import threading

LFS = [
    {"type": "keyword", "keyword": word, "label": index % 2}
    for index, word in enumerate(
        ["check", "subscribe", "song", "love", "free", "click", "great", "watch"]
    )
]

N_THREADS = 8
MAX_INFLIGHT = 2


def _body(seed):
    # Two LFs per request keeps the fleet work trivial; distinct seeds give
    # every thread a distinct content key.
    return {"dataset": "youtube", "lfs": LFS[:2], "scale": 0.15, "seed": seed}


def test_inflight_cap_and_exactly_one_terminal_status(harness_factory):
    harness = harness_factory(max_inflight=MAX_INFLIGHT, retry_after=0.05)
    client = harness.client
    barrier = threading.Barrier(N_THREADS)
    first_responses = {}
    outcomes = {}
    errors = []

    def hammer(seed):
        try:
            barrier.wait(timeout=10)
            # Phase 1: everyone submits at once with no workers running, so
            # admission capacity can only be consumed, never released —
            # exactly MAX_INFLIGHT submissions can be admitted.
            status, payload, headers = client.post("/label", _body(seed))
            first_responses[seed] = (status, payload, headers)
        except Exception as error:  # noqa: BLE001 - surface in the main thread
            errors.append(error)

    threads = [
        threading.Thread(target=hammer, args=(seed,)) for seed in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors
    assert len(first_responses) == N_THREADS

    statuses = sorted(status for status, _, _ in first_responses.values())
    assert statuses == [202] * MAX_INFLIGHT + [429] * (N_THREADS - MAX_INFLIGHT)
    for status, payload, headers in first_responses.values():
        if status == 429:
            assert "Retry-After" in headers
            assert payload["retry_after"] > 0

    _, stats, _ = client.get("/stats")
    assert stats["admission"]["inflight"] == MAX_INFLIGHT
    assert stats["admission"]["peak_inflight"] == MAX_INFLIGHT
    assert stats["admission"]["rejected"] == N_THREADS - MAX_INFLIGHT

    # Phase 2: workers drain the fleet; rejected threads retry with backoff
    # until admitted; every request must reach exactly one terminal state.
    harness.start_worker(idle_timeout=8.0)
    harness.start_worker(idle_timeout=8.0)

    def resolve(seed):
        try:
            status, payload, _ = first_responses[seed]
            wait = threading.Event()
            while status == 429:
                wait.wait(0.1)
                status, payload, _ = client.post("/label", _body(seed))
            key = payload["key"]
            status, payload, _ = harness.poll_until_done(key, timeout=60)
            outcomes[seed] = (key, status)
        except Exception as error:  # noqa: BLE001
            errors.append(error)

    threads = [
        threading.Thread(target=resolve, args=(seed,)) for seed in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=90)
    assert not errors

    # Exactly one terminal status per request, all successful, all distinct.
    assert sorted(outcomes) == list(range(N_THREADS))
    assert {status for _, status in outcomes.values()} == {200}
    assert len({key for key, _ in outcomes.values()}) == N_THREADS

    _, stats, _ = client.get("/stats")
    assert stats["admission"]["peak_inflight"] <= MAX_INFLIGHT
    assert stats["admission"]["inflight"] == 0
    assert stats["admission"]["completed"] == stats["admission"]["admitted"]
    assert stats["jobs"] == {"pending": 0, "done": N_THREADS, "failed": 0}
    # Dedup held under contention: one enqueue per distinct key, ever.
    assert stats["requests"]["enqueued"] == N_THREADS


def test_concurrent_session_hammering_never_corrupts(harness_factory):
    harness = harness_factory(retry_after=0.05)
    client = harness.client
    _, info, _ = client.post("/sessions", {"dataset": "youtube", "scale": 0.15})
    sid = info["session_id"]
    barrier = threading.Barrier(N_THREADS)
    landed = []
    errors = []

    def stream(index):
        try:
            barrier.wait(timeout=10)
            wait = threading.Event()
            while True:
                status, payload, _ = client.post(f"/sessions/{sid}/lfs", LFS[index])
                if status == 200:
                    landed.append((index, payload["n_lfs"]))
                    return
                # The only acceptable non-success is the per-session
                # concurrency limit; anything else is corruption.
                assert status == 429, (status, payload)
                wait.wait(0.05)
        except Exception as error:  # noqa: BLE001
            errors.append(error)

    threads = [
        threading.Thread(target=stream, args=(index,)) for index in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors

    # Every add landed exactly once and the LF count is strictly serial:
    # requests interleaved but never interfered.
    assert len(landed) == N_THREADS
    assert sorted(count for _, count in landed) == list(range(1, N_THREADS + 1))

    status, payload, _ = client.get(f"/sessions/{sid}/labels")
    assert status == 200
    assert payload["n_lfs"] == N_THREADS
    names = {row["name"] for row in payload["lf_diagnostics"]}
    assert len(names) == N_THREADS
    assert len(payload["labels"]["values"]) == len(payload["labels"]["accepted"])
