"""Shared fixtures for the serving test suite.

Every test talks to the service over a *real* HTTP socket — the server is
bound to an ephemeral localhost port and served from a daemon thread — but
workers run as :func:`repro.runner.worker.run_worker` loops on threads
(the supervisor-test idiom), so the full cold path (HTTP → broker → worker
→ result store → HTTP) is exercised without subprocess startup per test.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.runner.worker import run_worker
from repro.serving import LabelingService
from repro.serving.server import serve


class ServingClient:
    """A tiny urllib client: ``(status, payload, headers)`` per call."""

    def __init__(self, base_url: str):
        self.base_url = base_url

    def request(self, method: str, path: str, body=None):
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method
        )
        if data is not None:
            request.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read()), dict(response.headers)
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read()), dict(error.headers)

    def raw(self, method: str, path: str, body=None) -> bytes:
        """The exact response bytes (for byte-identity assertions)."""
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method
        )
        if data is not None:
            request.add_header("Content-Type", "application/json")
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.read()

    def get(self, path: str):
        return self.request("GET", path)

    def post(self, path: str, body=None):
        return self.request("POST", path, body)

    def delete(self, path: str):
        return self.request("DELETE", path)


class ServingHarness:
    """One service + HTTP server + optional thread workers, torn down cleanly."""

    def __init__(self, tmp_path, **service_kwargs):
        self.spool = tmp_path / "spool"
        self.cache_dir = tmp_path / "cache"
        self.backend = service_kwargs.get("broker", "spool")
        self.results = service_kwargs.get("results", "pickle")
        service_kwargs.setdefault("poll_interval", 0.05)
        self.service = LabelingService(self.spool, self.cache_dir, **service_kwargs)
        self.server = serve(self.service, quiet=True)
        host, port = self.server.server_address[:2]
        self.client = ServingClient(f"http://{host}:{port}")
        self._server_thread = threading.Thread(
            target=self.server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
        )
        self._server_thread.start()
        self._worker_threads: list[threading.Thread] = []

    def start_worker(self, **kwargs) -> threading.Thread:
        """Run one worker loop on a thread against the shared spool/cache."""
        kwargs.setdefault("idle_timeout", 5.0)
        kwargs.setdefault("poll_interval", 0.05)
        kwargs.setdefault("quiet", True)
        kwargs.setdefault("broker", self.backend)
        kwargs.setdefault("results", self.results)
        thread = threading.Thread(
            target=run_worker,
            args=(str(self.spool), str(self.cache_dir)),
            kwargs=kwargs,
            daemon=True,
        )
        thread.start()
        self._worker_threads.append(thread)
        return thread

    def join_workers(self, timeout: float = 60.0) -> None:
        for thread in self._worker_threads:
            thread.join(timeout=timeout)

    def poll_until_done(self, key: str, timeout: float = 60.0):
        """Poll ``GET /label/<key>`` until a terminal status; returns the last reply."""
        deadline = threading.Event()
        waited = 0.0
        while waited < timeout:
            status, payload, headers = self.client.get(f"/label/{key}")
            if status != 202:
                return status, payload, headers
            deadline.wait(0.1)
            waited += 0.1
        raise AssertionError(f"label job {key} still pending after {timeout}s")

    def shutdown(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self.service.close()
        self.join_workers(timeout=5.0)


@pytest.fixture()
def harness_factory(tmp_path):
    """Build serving harnesses; everything is shut down at teardown."""
    built = []

    def factory(**service_kwargs):
        harness = ServingHarness(tmp_path / f"h{len(built)}", **service_kwargs)
        built.append(harness)
        return harness

    yield factory
    for harness in built:
        harness.shutdown()
