"""Session round-trips over HTTP: stream, evict mid-stream, resume.

Pins the suspend-resume contract at the service boundary: a session that
is LRU-evicted to disk mid-stream and transparently resumed produces final
labels and diagnostics identical to an uninterrupted run of the same LF
sequence.
"""

from __future__ import annotations

from repro.serving.schemas import canonical_json
from repro.serving.sessions import LabelingSession

LFS = [
    {"type": "keyword", "keyword": "check", "label": 1},
    {"type": "keyword", "keyword": "subscribe", "label": 1},
    {"type": "keyword", "keyword": "song", "label": 0},
    {"type": "keyword", "keyword": "love", "label": 0},
]


def _without_session_id(payload: dict) -> dict:
    return {key: value for key, value in payload.items() if key != "session"}


def _control_payload(seed: int) -> dict:
    """The uninterrupted ground truth, computed without HTTP."""
    session = LabelingSession("control", "youtube", seed=seed, scale=0.15)
    for lf in LFS:
        session.add_lf(lf)
    return _without_session_id(session.label_payload())


def test_lru_eviction_mid_stream_preserves_labels(harness_factory):
    harness = harness_factory(max_sessions=1)
    client = harness.client

    _, info, _ = client.post("/sessions", {"dataset": "youtube", "seed": 7, "scale": 0.15})
    first = info["session_id"]
    for lf in LFS[:2]:
        status, step, _ = client.post(f"/sessions/{first}/lfs", lf)
        assert status == 200
        assert step["duplicate"] is False

    # A second session trips max_sessions=1: the first is LRU-evicted to
    # disk mid-stream.
    _, info, _ = client.post("/sessions", {"dataset": "youtube", "seed": 8, "scale": 0.15})
    second = info["session_id"]
    _, stats, _ = client.get("/stats")
    assert stats["sessions"]["evictions"] >= 1
    listing = {row["session"]: row["live"] for row in client.get("/sessions")[1]["sessions"]}
    assert listing[first] is False

    # Streaming into the evicted session transparently resumes it.
    for lf in LFS[2:]:
        status, step, _ = client.post(f"/sessions/{first}/lfs", lf)
        assert status == 200
    _, stats, _ = client.get("/stats")
    assert stats["sessions"]["resumes"] >= 1

    status, resumed, _ = client.get(f"/sessions/{first}/labels")
    assert status == 200
    assert resumed["n_lfs"] == len(LFS)
    assert canonical_json(_without_session_id(resumed)) == canonical_json(
        _control_payload(seed=7)
    )

    # The untouched second session is unaffected by the churn.
    status, other, _ = client.get(f"/sessions/{second}/labels")
    assert status == 200
    assert other["n_lfs"] == 0


def test_explicit_evict_roundtrip_and_duplicates(harness_factory):
    harness = harness_factory()
    client = harness.client
    _, info, _ = client.post("/sessions", {"dataset": "youtube", "seed": 7, "scale": 0.15})
    sid = info["session_id"]

    for lf in LFS[:2]:
        client.post(f"/sessions/{sid}/lfs", lf)
    status, payload, _ = client.post(f"/sessions/{sid}/evict")
    assert (status, payload["evicted"]) == (200, True)
    # Evicting a suspended session is an idempotent no-op.
    assert client.post(f"/sessions/{sid}/evict")[1]["evicted"] is False

    # A duplicate LF after resume is reported, not re-added.
    status, step, _ = client.post(f"/sessions/{sid}/lfs", LFS[0])
    assert status == 200
    assert step["duplicate"] is True
    assert step["n_lfs"] == 2

    for lf in LFS[2:]:
        client.post(f"/sessions/{sid}/lfs", lf)
    _, resumed, _ = client.get(f"/sessions/{sid}/labels")
    assert canonical_json(_without_session_id(resumed)) == canonical_json(
        _control_payload(seed=7)
    )


def test_session_errors_and_lifecycle(harness_factory):
    harness = harness_factory()
    client = harness.client

    assert client.post("/sessions", {})[0] == 400
    assert client.post("/sessions", {"dataset": "youtube", "bogus": 1})[0] == 400
    assert client.post("/sessions", {"dataset": "no-such-dataset"})[0] == 400
    assert client.get("/sessions/nope/labels")[0] == 404
    assert client.post("/sessions/nope/lfs", LFS[0])[0] == 404
    assert client.delete("/sessions/nope")[0] == 404

    _, info, _ = client.post("/sessions", {"dataset": "youtube", "scale": 0.15})
    sid = info["session_id"]
    assert client.post(f"/sessions/{sid}/lfs", {"type": "?"})[0] == 400

    # A busy session answers 429 with a Retry-After hint instead of queueing.
    with harness.service.sessions.acquire(sid):
        status, payload, headers = client.post(f"/sessions/{sid}/lfs", LFS[0])
        assert status == 429
        assert "Retry-After" in headers
        assert payload["retry_after"] > 0
        assert client.delete(f"/sessions/{sid}")[0] == 429

    assert client.delete(f"/sessions/{sid}")[0] == 200
    assert client.get(f"/sessions/{sid}/labels")[0] == 404
