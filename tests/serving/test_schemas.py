"""Unit tests for the wire schemas and the admission controller."""

from __future__ import annotations

import json

import pytest

from repro.runner import run_trial
from repro.serving import AdmissionController, RequestError
from repro.serving.schemas import canonical_json, label_payload, parse_label_request

LFS = [
    {"type": "keyword", "keyword": "check", "label": 1},
    {"type": "threshold", "feature": 3, "value": 0.5, "op": ">=", "label": 0},
]

# Executed (not just parsed) below, so stick to text-native keyword LFs.
KEYWORD_LFS = [
    {"type": "keyword", "keyword": "check", "label": 1},
    {"type": "keyword", "keyword": "song", "label": 0},
]


class TestParseLabelRequest:
    def test_equivalent_requests_share_one_content_key(self):
        base = parse_label_request({"dataset": "youtube", "lfs": LFS})
        explicit = parse_label_request(
            {
                "dataset": "youtube",
                "lfs": list(reversed(list(reversed(LFS)))),
                "seed": 0,
                "scale": 1.0,
                "end_model_C": 1.0,
                "eval_every": len(LFS),
            }
        )
        assert base.key == explicit.key

    def test_distinct_knobs_get_distinct_keys(self):
        base = parse_label_request({"dataset": "youtube", "lfs": LFS})
        for variation in (
            {"seed": 1},
            {"scale": 0.5},
            {"end_model_C": 2.0},
            {"eval_every": 1},
            {"lfs": LFS[:1]},
            {"config_overrides": {"lm_threshold_grid": 11}},
        ):
            varied = parse_label_request({"dataset": "youtube", "lfs": LFS, **variation})
            assert varied.key != base.key, variation

    def test_spec_shape(self):
        spec = parse_label_request({"dataset": "youtube", "lfs": LFS, "seed": 3})
        assert spec.framework == "lfset"
        assert spec.dataset == "youtube"
        assert spec.seed == 3
        assert spec.protocol.n_iterations == len(LFS)
        assert spec.protocol.n_seeds == 1
        assert spec.pipeline_kwargs["lfs"] == [
            {"type": "keyword", "keyword": "check", "label": 1},
            {"type": "threshold", "feature": 3, "value": 0.5, "op": ">=", "label": 0},
        ]

    @pytest.mark.parametrize(
        "body",
        [
            "not a dict",
            {},
            {"dataset": "youtube"},
            {"dataset": "", "lfs": LFS},
            {"dataset": "youtube", "lfs": []},
            {"dataset": "youtube", "lfs": "keyword"},
            {"dataset": "youtube", "lfs": [{"type": "nope"}]},
            {"dataset": "youtube", "lfs": LFS, "seed": "many"},
            {"dataset": "youtube", "lfs": LFS, "config_overrides": [1]},
            {"dataset": "youtube", "lfs": LFS, "surprise": True},
        ],
    )
    def test_rejects_malformed_bodies(self, body):
        with pytest.raises(RequestError):
            parse_label_request(body)


class TestLabelPayload:
    def test_payload_is_canonical_and_json_clean(self):
        spec = parse_label_request(
            {"dataset": "youtube", "lfs": KEYWORD_LFS, "scale": 0.15}
        )
        history = run_trial(spec)
        payload = label_payload(spec, history)
        assert payload["key"] == spec.key
        assert payload["status"] == "done"
        assert payload["n_iterations"] == len(KEYWORD_LFS)
        assert payload["artifacts"]["labels"]["values"]
        # canonical_json round-trips and is stable across encodings.
        encoded = canonical_json(payload)
        assert json.loads(encoded) == json.loads(canonical_json(json.loads(encoded)))

    def test_identical_specs_render_identical_bytes(self):
        spec = parse_label_request(
            {"dataset": "youtube", "lfs": KEYWORD_LFS, "scale": 0.15}
        )
        first = canonical_json(label_payload(spec, run_trial(spec)))
        second = canonical_json(label_payload(spec, run_trial(spec)))
        assert first == second


class TestAdmissionController:
    def test_acquire_release_and_peak(self):
        admission = AdmissionController(max_inflight=2, retry_after=0.5)
        assert admission.try_acquire()
        assert admission.try_acquire()
        assert not admission.try_acquire()
        assert admission.inflight == 2
        admission.release()
        assert admission.try_acquire()
        snapshot = admission.snapshot()
        assert snapshot["peak_inflight"] == 2
        assert snapshot["admitted"] == 3
        assert snapshot["rejected"] == 1
        assert snapshot["completed"] == 1
        assert snapshot["retry_after"] == 0.5

    def test_release_without_acquire_raises(self):
        admission = AdmissionController(max_inflight=1)
        with pytest.raises(RuntimeError):
            admission.release()

    @pytest.mark.parametrize(
        "kwargs", [{"max_inflight": 0}, {"retry_after": 0.0}, {"retry_after": -1}]
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionController(**kwargs)
