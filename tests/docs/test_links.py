"""Link checker for the docs tree and the README.

Every relative markdown link must point at a file that exists in the
repository, and every ``#anchor`` fragment must match a heading of the
target file under GitHub's slugification rules.  External links are only
sanity-checked for scheme (no network access in tests).
"""

from __future__ import annotations

import re
from pathlib import Path

#: ``[text](target)`` — deliberately simple; none of our docs use images,
#: reference-style links or nested brackets.
_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")

_ALLOWED_SCHEMES = ("http://", "https://", "mailto:")


def _github_slug(heading: str) -> str:
    """GitHub's anchor slug for a markdown heading."""
    text = heading.strip().strip("#").strip().lower()
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _heading_slugs(path: Path) -> set[str]:
    slugs = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
        elif not in_fence and line.startswith("#"):
            slugs.add(_github_slug(line))
    return slugs


def _links_of(path: Path) -> list[str]:
    in_fence = False
    links = []
    for line in path.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
        elif not in_fence:
            links.extend(_LINK.findall(line))
    return links


def test_relative_links_resolve(doc_path, repo_root):
    problems = []
    for target in _links_of(doc_path):
        if target.startswith(_ALLOWED_SCHEMES):
            continue
        if target.startswith("#"):
            file_part, anchor = "", target[1:]
        else:
            file_part, _, anchor = target.partition("#")
        destination = (doc_path.parent / file_part).resolve() if file_part else doc_path
        if file_part and not destination.exists():
            problems.append(f"{target}: no such file {destination}")
            continue
        if file_part and repo_root not in destination.parents and destination != repo_root:
            problems.append(f"{target}: escapes the repository")
            continue
        if anchor and destination.suffix == ".md":
            if anchor not in _heading_slugs(destination):
                problems.append(f"{target}: no heading with slug #{anchor}")
    assert not problems, f"broken links in {doc_path.name}: {problems}"


def test_docs_are_linked_from_readme(repo_root):
    """Every guide is reachable from the README (the docs' front door)."""
    readme_links = set(_links_of(repo_root / "README.md"))
    for guide in sorted((repo_root / "docs").glob("*.md")):
        assert any(
            link.split("#")[0] == f"docs/{guide.name}" for link in readme_links
        ), f"README does not link docs/{guide.name}"
