"""Shared fixtures for the documentation test suite.

The docs make executable promises (fenced ``python`` blocks, relative
links, "every public runner API is documented"); the tests in this
directory keep them true.  The fence parser and the doc-file inventory live
here so the snippet runner and the link checker share one source of truth.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
DOCS_DIR = REPO_ROOT / "docs"

#: Every markdown file whose fenced ``python`` blocks must execute and whose
#: relative links must resolve.
DOC_FILES = sorted(DOCS_DIR.glob("*.md")) + [REPO_ROOT / "README.md"]

_FENCE = re.compile(r"^(`{3,})\s*(\S*)\s*$")


@dataclass
class Snippet:
    """One fenced code block: where it came from and what it says."""

    path: Path
    language: str
    start_line: int
    code: str


def extract_snippets(path: Path) -> list[Snippet]:
    """All fenced code blocks of a markdown file, in document order."""
    snippets: list[Snippet] = []
    fence: str | None = None
    language = ""
    start = 0
    lines: list[str] = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        match = _FENCE.match(line.strip())
        if fence is None:
            if match:
                fence, language, start, lines = match.group(1), match.group(2), number, []
        elif match and match.group(1) == fence and not match.group(2):
            snippets.append(
                Snippet(path=path, language=language, start_line=start, code="\n".join(lines))
            )
            fence = None
        else:
            lines.append(line)
    return snippets


def pytest_generate_tests(metafunc):
    """Parametrize any test taking ``doc_path`` over the doc-file inventory."""
    if "doc_path" in metafunc.fixturenames:
        metafunc.parametrize("doc_path", DOC_FILES, ids=lambda path: path.name)


@pytest.fixture()
def doc_files() -> list[Path]:
    """The full doc-file inventory (guides + README)."""
    return list(DOC_FILES)


@pytest.fixture()
def snippets_of():
    """The fence parser, as a fixture so test modules need no cross-import."""
    return extract_snippets


@pytest.fixture()
def repo_root() -> Path:
    """Repository root directory."""
    return REPO_ROOT
