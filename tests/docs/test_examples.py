"""Execute every fenced ``python`` block in the docs and the README.

The documentation promises that its code runs; this test makes the promise
structural.  Conventions the docs follow (enforced here):

* blocks tagged ``python`` are executed; any other tag (``bash``, ``text``)
  is illustrative and skipped;
* all ``python`` blocks of one file run **sequentially in one namespace**,
  so a later block may use names a former one defined (doctest-style
  narrative);
* blocks run with the working directory set to a temp dir, so relative
  cache paths in the snippets never dirty the repository;
* snippets must be cheap — they use tiny protocols/scales, and this suite
  is part of the tier-1 run.
"""

from __future__ import annotations

import pytest


def test_python_snippets_execute(doc_path, snippets_of, tmp_path, monkeypatch):
    snippets = [s for s in snippets_of(doc_path) if s.language == "python"]
    if not snippets:
        pytest.skip(f"{doc_path.name} has no python snippets")
    monkeypatch.chdir(tmp_path)
    namespace: dict = {"__name__": f"docsnippet_{doc_path.stem}"}
    for snippet in snippets:
        code = compile(snippet.code, f"{doc_path.name}:{snippet.start_line}", "exec")
        try:
            exec(code, namespace)  # noqa: S102 - executing our own docs is the point
        except Exception as error:
            pytest.fail(
                f"snippet at {doc_path.name}:{snippet.start_line} failed: "
                f"{type(error).__name__}: {error}"
            )


def test_docs_exist_and_have_runnable_examples(doc_files, snippets_of):
    """The three guides exist, and the doc set as a whole stays executable."""
    names = {path.name for path in doc_files}
    assert {
        "architecture.md",
        "warm_starts.md",
        "adding_experiments.md",
        "run_history.md",
    } <= names
    runnable = [
        snippet
        for path in doc_files
        for snippet in snippets_of(path)
        if snippet.language == "python"
    ]
    assert len(runnable) >= 4, "docs lost their executable examples"
