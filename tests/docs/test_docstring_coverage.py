"""Docstring-coverage floor on the experiment engine (interrogate-equivalent).

``src/repro/runner`` is the subsystem other machines run — its public
surface (module docstrings, public classes, public functions and methods)
must be fully documented.  This is the same check ``interrogate
--fail-under`` would run, implemented over ``ast`` so it needs no extra
dependency and runs in the tier-1 suite; CI's docs job executes it.
"""

from __future__ import annotations

import ast
from pathlib import Path

import repro.runner

RUNNER_DIR = Path(repro.runner.__file__).resolve().parent

#: Fraction of public objects that must carry a docstring.  The floor is
#: total on purpose: the engine is the documented example the docs tree
#: points into.
COVERAGE_FLOOR = 1.0


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _objects_of(path: Path):
    """Yield ``(qualified name, has_docstring)`` for the module's public API."""
    tree = ast.parse(path.read_text())
    module_name = f"repro.runner.{path.stem}" if path.stem != "__init__" else "repro.runner"
    yield module_name, ast.get_docstring(tree) is not None
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and _is_public(node.name):
            yield f"{module_name}.{node.name}", ast.get_docstring(node) is not None
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            yield f"{module_name}.{node.name}", ast.get_docstring(node) is not None
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)) and _is_public(
                    member.name
                ):
                    yield (
                        f"{module_name}.{node.name}.{member.name}",
                        ast.get_docstring(member) is not None,
                    )


def test_runner_docstring_coverage_floor():
    objects = [
        entry
        for path in sorted(RUNNER_DIR.glob("*.py"))
        for entry in _objects_of(path)
    ]
    assert len(objects) >= 40, "runner public surface unexpectedly small"
    missing = [name for name, documented in objects if not documented]
    coverage = 1.0 - len(missing) / len(objects)
    assert coverage >= COVERAGE_FLOOR, (
        f"runner docstring coverage {coverage:.2%} below floor "
        f"{COVERAGE_FLOOR:.0%}; missing: {missing}"
    )
