"""Docstring-coverage floor on the documented subsystems (interrogate-equivalent).

The subsystems other machines run or other PRs extend — the experiment
engine (``repro.runner``), the serving layer (``repro.serving``), the
numeric core (``repro.numerics``) and the static-analysis tooling
(``repro.tools``) — must keep their public surface (module docstrings,
public classes, public functions and methods) fully documented.  This is
the same check ``interrogate --fail-under`` would run, implemented over
``ast`` so it needs no extra dependency and runs in the tier-1 suite;
CI's docs job executes it.
"""

from __future__ import annotations

import ast
import importlib
from pathlib import Path

import pytest

#: Fraction of public objects that must carry a docstring.  The floor is
#: total on purpose: these packages are the documented examples the docs
#: tree points into.
COVERAGE_FLOOR = 1.0

#: ``(package, minimum public-object count)`` — the count guards against
#: the check silently scanning an empty/moved directory.
COVERED_PACKAGES = [
    ("repro.runner", 40),
    ("repro.serving", 30),
    ("repro.numerics", 15),
    ("repro.tools", 15),
]


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _objects_of(path: Path, module_name: str):
    """Yield ``(qualified name, has_docstring)`` for the module's public API."""
    tree = ast.parse(path.read_text())
    yield module_name, ast.get_docstring(tree) is not None
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and _is_public(node.name):
            yield f"{module_name}.{node.name}", ast.get_docstring(node) is not None
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            yield f"{module_name}.{node.name}", ast.get_docstring(node) is not None
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)) and _is_public(
                    member.name
                ):
                    yield (
                        f"{module_name}.{node.name}.{member.name}",
                        ast.get_docstring(member) is not None,
                    )


def _package_objects(package: str):
    """Every public object of *package*, recursively over its modules."""
    package_dir = Path(importlib.import_module(package).__file__).resolve().parent
    objects = []
    for path in sorted(package_dir.rglob("*.py")):
        relative = path.relative_to(package_dir).with_suffix("")
        parts = [part for part in relative.parts if part != "__init__"]
        module_name = ".".join([package, *parts])
        objects.extend(_objects_of(path, module_name))
    return objects


@pytest.mark.parametrize(
    "package,minimum", COVERED_PACKAGES, ids=[pkg for pkg, _ in COVERED_PACKAGES]
)
def test_docstring_coverage_floor(package, minimum):
    objects = _package_objects(package)
    assert len(objects) >= minimum, f"{package} public surface unexpectedly small"
    missing = [name for name, documented in objects if not documented]
    coverage = 1.0 - len(missing) / len(objects)
    assert coverage >= COVERAGE_FLOOR, (
        f"{package} docstring coverage {coverage:.2%} below floor "
        f"{COVERAGE_FLOOR:.0%}; missing: {missing}"
    )
