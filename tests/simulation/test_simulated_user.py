"""Tests for the simulated user, label-noise variant and oracle."""

import numpy as np
import pytest

from repro.labeling import ABSTAIN, KeywordLF
from repro.simulation import NoisySimulatedUser, Oracle, SimulatedUser


class TestSimulatedUser:
    def test_designed_lf_fires_correctly_on_query(self, tiny_text_split):
        train = tiny_text_split.train
        user = SimulatedUser(train, random_state=0)
        for query in range(10):
            lf = user.design_lf(query)
            if lf is None:
                continue
            output = lf.apply(train.subset(np.array([query])))[0]
            # Noise-free protocol: the LF targets the query's true class.
            assert output == train.labels[query]

    def test_returned_lfs_have_accuracy_above_threshold(self, tiny_text_split):
        train = tiny_text_split.train
        user = SimulatedUser(train, accuracy_threshold=0.6, random_state=0)
        for query in range(15):
            lf = user.design_lf(query)
            if lf is None:
                continue
            outputs = lf.apply(train)
            fired = outputs != ABSTAIN
            accuracy = np.mean(outputs[fired] == train.labels[fired])
            assert accuracy > 0.6

    def test_no_duplicate_lfs_across_queries(self, tiny_text_split):
        user = SimulatedUser(tiny_text_split.train, random_state=0)
        returned = []
        for query in range(30):
            lf = user.design_lf(query)
            if lf is not None:
                returned.append(lf)
        assert len(returned) == len(set(returned))

    def test_verify_lf_uses_accuracy_threshold(self, tiny_text_split):
        train = tiny_text_split.train
        user = SimulatedUser(train, accuracy_threshold=0.6, random_state=0)
        good = KeywordLF("good", 0)
        outputs = good.apply(train)
        fired = outputs != ABSTAIN
        expected = np.mean(outputs[fired] == train.labels[fired]) > 0.6
        assert user.verify_lf(good) == expected

    def test_verify_never_firing_lf_is_false(self, tiny_text_split):
        user = SimulatedUser(tiny_text_split.train, random_state=0)
        assert not user.verify_lf(KeywordLF("zzzznotaword", 0))

    def test_label_instance_returns_ground_truth(self, tiny_text_split):
        train = tiny_text_split.train
        user = SimulatedUser(train, random_state=0)
        assert user.label_instance(4) == train.labels[4]

    def test_invalid_threshold_raises(self, tiny_text_split):
        with pytest.raises(ValueError):
            SimulatedUser(tiny_text_split.train, accuracy_threshold=1.0)

    def test_deterministic_with_seed(self, tiny_text_split):
        first = SimulatedUser(tiny_text_split.train, random_state=3)
        second = SimulatedUser(tiny_text_split.train, random_state=3)
        for query in range(10):
            assert first.design_lf(query) == second.design_lf(query)


class TestNoisySimulatedUser:
    def test_zero_noise_behaves_like_clean_user(self, tiny_text_split):
        train = tiny_text_split.train
        noisy = NoisySimulatedUser(train, noise_rate=0.0, random_state=0)
        for query in range(10):
            lf = noisy.design_lf(query)
            if lf is None:
                continue
            assert lf.apply(train.subset(np.array([query])))[0] == train.labels[query]
        assert noisy.n_noisy_responses == 0

    def test_full_noise_produces_misfiring_lfs(self, tiny_text_split):
        train = tiny_text_split.train
        noisy = NoisySimulatedUser(train, noise_rate=1.0, random_state=0)
        wrong = 0
        answered = 0
        for query in range(40):
            lf = noisy.design_lf(query)
            if lf is None:
                continue
            answered += 1
            output = lf.apply(train.subset(np.array([query])))[0]
            if output != train.labels[query]:
                wrong += 1
        assert answered > 0
        # Noisy answers dominate (some fall back to clean when no flipped
        # candidate exists on that instance).
        assert noisy.n_noisy_responses == wrong
        assert wrong > 0

    def test_invalid_noise_rate_raises(self, tiny_text_split):
        with pytest.raises(ValueError):
            NoisySimulatedUser(tiny_text_split.train, noise_rate=1.5)


class TestOracle:
    def test_returns_true_labels_without_noise(self, tiny_text_split):
        train = tiny_text_split.train
        oracle = Oracle(train)
        labels = oracle.label_many(range(20))
        np.testing.assert_array_equal(labels, train.labels[:20])
        assert oracle.n_queries == 20

    def test_full_noise_never_returns_true_label(self, tiny_text_split):
        train = tiny_text_split.train
        oracle = Oracle(train, noise_rate=1.0, random_state=0)
        labels = oracle.label_many(range(20))
        assert np.all(labels != train.labels[:20])

    def test_invalid_noise_rate_raises(self, tiny_text_split):
        with pytest.raises(ValueError):
            Oracle(tiny_text_split.train, noise_rate=-0.1)
