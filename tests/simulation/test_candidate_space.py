"""Tests for the candidate LF spaces of the simulated user."""

import numpy as np
import pytest

from repro.labeling import ABSTAIN, KeywordLF, ThresholdLF
from repro.simulation import (
    enumerate_keyword_lfs,
    keyword_lf_candidates,
    threshold_lf_candidates,
)
from repro.simulation.candidate_space import candidate_lfs_for_query


class TestKeywordCandidates:
    def test_candidate_keywords_occur_in_query_instance(self, tiny_text_split):
        train = tiny_text_split.train
        candidates = keyword_lf_candidates(train, 0, accuracy_threshold=0.0)
        for candidate in candidates:
            assert candidate.lf.keyword in train.token_sets[0]

    def test_accuracy_threshold_filters(self, tiny_text_split):
        train = tiny_text_split.train
        loose = keyword_lf_candidates(train, 0, accuracy_threshold=0.0)
        strict = keyword_lf_candidates(train, 0, accuracy_threshold=0.9)
        assert len(strict) <= len(loose)
        for candidate in strict:
            assert candidate.accuracy > 0.9

    def test_candidate_statistics_match_direct_computation(self, tiny_text_split):
        train = tiny_text_split.train
        candidates = keyword_lf_candidates(train, 0, accuracy_threshold=0.0)
        for candidate in candidates[:5]:
            outputs = candidate.lf.apply(train)
            fired = outputs != ABSTAIN
            assert candidate.coverage == pytest.approx(fired.mean())
            accuracy = np.mean(outputs[fired] == train.labels[fired])
            assert candidate.accuracy == pytest.approx(accuracy)

    def test_target_label_restriction(self, tiny_text_split):
        train = tiny_text_split.train
        candidates = keyword_lf_candidates(train, 0, accuracy_threshold=0.0, target_label=1)
        assert all(candidate.lf.label == 1 for candidate in candidates)


class TestThresholdCandidates:
    def test_query_value_lies_on_boundary(self, tiny_tabular_split):
        train = tiny_tabular_split.train
        candidates = threshold_lf_candidates(train, 3, accuracy_threshold=0.0)
        assert candidates
        for candidate in candidates:
            lf = candidate.lf
            assert isinstance(lf, ThresholdLF)
            assert lf.value == pytest.approx(train.raw_features[3, lf.feature])

    def test_every_candidate_fires_on_its_query_instance(self, tiny_tabular_split):
        train = tiny_tabular_split.train
        candidates = threshold_lf_candidates(train, 5, accuracy_threshold=0.0)
        for candidate in candidates:
            outputs = candidate.lf.apply(train.subset(np.array([5])))
            assert outputs[0] != ABSTAIN

    def test_accuracy_threshold_filters(self, tiny_tabular_split):
        train = tiny_tabular_split.train
        strict = threshold_lf_candidates(train, 0, accuracy_threshold=0.9)
        for candidate in strict:
            assert candidate.accuracy > 0.9


class TestEnumerateKeywordLFs:
    def test_candidates_sorted_by_coverage(self, tiny_text_split):
        candidates = enumerate_keyword_lfs(tiny_text_split.train, min_coverage=0.01)
        coverages = [c.coverage for c in candidates]
        assert coverages == sorted(coverages, reverse=True)

    def test_max_candidates_truncates(self, tiny_text_split):
        candidates = enumerate_keyword_lfs(tiny_text_split.train, max_candidates=5)
        assert len(candidates) <= 5

    def test_each_candidate_targets_majority_class_of_keyword(self, tiny_text_split):
        train = tiny_text_split.train
        for candidate in enumerate_keyword_lfs(train, min_coverage=0.05)[:10]:
            outputs = candidate.lf.apply(train)
            fired = outputs != ABSTAIN
            majority = np.bincount(train.labels[fired], minlength=2).argmax()
            assert candidate.lf.label == majority


class TestDispatch:
    def test_dispatches_by_dataset_kind(self, tiny_text_split, tiny_tabular_split):
        text_cands = candidate_lfs_for_query(tiny_text_split.train, 0, 0.0)
        tab_cands = candidate_lfs_for_query(tiny_tabular_split.train, 0, 0.0)
        assert all(isinstance(c.lf, KeywordLF) for c in text_cands)
        assert all(isinstance(c.lf, ThresholdLF) for c in tab_cands)

    def test_unknown_dataset_type_raises(self):
        with pytest.raises(TypeError):
            candidate_lfs_for_query(object(), 0)
