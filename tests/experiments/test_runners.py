"""Tests for the per-table/figure experiment runners and reporting."""

import pytest

from repro.experiments import (
    EvaluationProtocol,
    Figure3Result,
    format_curve_series,
    format_result_table,
    render_markdown_table,
    run_figure3,
    run_table3_ablation,
    run_table4_samplers,
    run_table5_label_noise,
    table2_dataset_statistics,
)
from repro.experiments.ablation import ABLATION_VARIANTS
from repro.experiments.samplers import TABLE4_SAMPLERS

FAST = EvaluationProtocol(n_iterations=3, eval_every=3, n_seeds=1, dataset_scale=0.15)


class TestTable2:
    def test_all_datasets_reported(self):
        rows = table2_dataset_statistics(scale=0.15)
        assert len(rows) == 8
        names = {row["name"] for row in rows}
        assert "youtube" in names and "census" in names
        for row in rows:
            assert row["n_train"] > row["n_valid"]
            assert row["paper_train"] > 0

    def test_subset_of_datasets(self):
        rows = table2_dataset_statistics(scale=0.15, names=["youtube"])
        assert len(rows) == 1


class TestFigure3:
    def test_runs_selected_frameworks_and_datasets(self):
        outcome = run_figure3(FAST, datasets=["youtube"], frameworks=["uncertainty", "nemo"])
        assert isinstance(outcome, Figure3Result)
        assert set(outcome.results["youtube"]) == {"uncertainty", "nemo"}
        assert outcome.average_accuracy("uncertainty") >= 0.0

    def test_nemo_skipped_on_tabular(self):
        outcome = run_figure3(FAST, datasets=["occupancy"], frameworks=["uncertainty", "nemo"])
        assert "nemo" not in outcome.results["occupancy"]
        assert "uncertainty" in outcome.results["occupancy"]

    def test_improvement_over_baseline(self):
        outcome = run_figure3(FAST, datasets=["youtube"], frameworks=["activedp", "iws"])
        delta = outcome.improvement_over("iws", "activedp")
        assert isinstance(delta, float)


class TestTableRunners:
    def test_ablation_variants_structure(self):
        results = run_table3_ablation(FAST, datasets=["youtube"], variants=["Baseline", "ActiveDP"])
        assert set(results) == {"Baseline", "ActiveDP"}
        assert "youtube" in results["ActiveDP"]
        assert set(ABLATION_VARIANTS) == {"Baseline", "LabelPick", "ConFusion", "ActiveDP"}

    def test_sampler_study_structure(self):
        results = run_table4_samplers(FAST, datasets=["youtube"], samplers=["Passive", "ADP"])
        assert set(results) == {"Passive", "ADP"}
        assert set(TABLE4_SAMPLERS) == {"Passive", "US", "LAL", "SEU", "ADP"}

    def test_noise_study_structure(self):
        results = run_table5_label_noise(FAST, datasets=["youtube"], noise_rates=(0.0, 0.15))
        assert set(results) == {0.0, 0.15}
        assert "youtube" in results[0.0]


class TestReporting:
    def _results(self):
        return run_table3_ablation(FAST, datasets=["youtube"], variants=["Baseline", "ActiveDP"])

    def test_text_table_contains_rows_and_datasets(self):
        table = format_result_table(self._results())
        assert "Baseline" in table and "ActiveDP" in table and "youtube" in table

    def test_markdown_table_structure(self):
        markdown = render_markdown_table(self._results())
        lines = markdown.splitlines()
        assert lines[0].startswith("| Method")
        assert lines[1].startswith("|---")
        assert len(lines) == 4

    def test_curve_series_format(self):
        results = self._results()
        series = format_curve_series(results["ActiveDP"]["youtube"])
        assert series.startswith("activedp on youtube:")
