"""Tests for the evaluation protocol and result aggregation."""

import numpy as np
import pytest

from repro.core.results import IterationRecord, RunHistory
from repro.experiments import EvaluationProtocol, run_framework_on_dataset
from repro.experiments.protocol import run_single_seed, summarize_histories


class TestEvaluationProtocol:
    def test_defaults_are_valid(self):
        protocol = EvaluationProtocol()
        assert protocol.n_iterations > 0

    def test_evaluation_iterations_include_final(self):
        protocol = EvaluationProtocol(n_iterations=25, eval_every=10)
        assert protocol.evaluation_iterations() == [10, 20, 25]

    def test_evaluation_iterations_exact_multiple(self):
        protocol = EvaluationProtocol(n_iterations=30, eval_every=10)
        assert protocol.evaluation_iterations() == [10, 20, 30]

    @pytest.mark.parametrize(
        "kwargs",
        [{"n_iterations": 0}, {"eval_every": 0}, {"n_seeds": 0}, {"dataset_scale": 0.0}],
    )
    def test_invalid_parameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            EvaluationProtocol(**kwargs)

    def test_paper_preset_matches_section_4(self):
        protocol = EvaluationProtocol.paper()
        assert protocol.n_iterations == 300
        assert protocol.eval_every == 10
        assert protocol.n_seeds == 5
        assert protocol.evaluation_iterations()[:2] == [10, 20]

    def test_paper_preset_accepts_overrides(self):
        protocol = EvaluationProtocol.paper(dataset_scale=0.2, n_seeds=2)
        assert protocol.n_iterations == 300
        assert protocol.n_seeds == 2
        assert protocol.dataset_scale == 0.2


class TestRunSingleSeed:
    def test_history_has_expected_evaluation_points(self, tiny_text_split):
        protocol = EvaluationProtocol(n_iterations=6, eval_every=3, n_seeds=1)
        history = run_single_seed("uncertainty", tiny_text_split, protocol, seed=0)
        points = history.evaluation_points()
        assert [p[0] for p in points] == [3, 6]
        for _, accuracy in points:
            assert 0.0 <= accuracy <= 1.0

    def test_records_label_quality_at_eval_points(self, tiny_text_split):
        protocol = EvaluationProtocol(n_iterations=4, eval_every=2, n_seeds=1)
        history = run_single_seed("activedp", tiny_text_split, protocol, seed=0)
        evaluated = [r for r in history.records if r.test_accuracy is not None]
        assert all(r.label_coverage is not None for r in evaluated)

    def test_pipeline_records_are_propagated(self, tiny_text_split):
        """The pipeline's real IterationRecord lands in the history (no -1 stubs)."""
        protocol = EvaluationProtocol(n_iterations=4, eval_every=2, n_seeds=1)
        history = run_single_seed("activedp", tiny_text_split, protocol, seed=0)
        assert [r.iteration for r in history.records] == [1, 2, 3, 4]
        assert all(0 <= r.query_index < len(tiny_text_split.train) for r in history.records)
        assert any(r.lf_name is not None for r in history.records)
        assert all(r.n_lfs >= 0 for r in history.records)


class TestSummarizeHistories:
    def _history(self, seed, accuracies):
        history = RunHistory(framework="f", dataset="d", seed=seed)
        for i, accuracy in enumerate(accuracies, start=1):
            record = IterationRecord(iteration=i * 10, query_index=0)
            record.test_accuracy = accuracy
            history.add(record)
        return history

    def test_average_over_seeds(self):
        histories = [self._history(0, [0.6, 0.8]), self._history(1, [0.4, 0.6])]
        result = summarize_histories("f", "d", histories)
        assert result.average_accuracy == pytest.approx(0.6)
        assert result.final_accuracy == pytest.approx(0.7)

    def test_curve_is_mean_per_evaluation_point(self):
        histories = [self._history(0, [0.6, 0.8]), self._history(1, [0.4, 0.6])]
        result = summarize_histories("f", "d", histories)
        assert result.curve == [(10, pytest.approx(0.5)), (20, pytest.approx(0.7))]


class TestRunFrameworkOnDataset:
    def test_small_end_to_end_run(self):
        protocol = EvaluationProtocol(
            n_iterations=4, eval_every=2, n_seeds=2, dataset_scale=0.15, base_seed=1
        )
        result = run_framework_on_dataset("uncertainty", "youtube", protocol)
        assert result.framework == "uncertainty"
        assert result.dataset == "youtube"
        assert len(result.histories) == 2
        assert 0.0 <= result.average_accuracy <= 1.0
        assert len(result.curve) == 2
