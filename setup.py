"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that ``python setup.py develop`` keeps working in offline environments where
the ``wheel`` package (required by pip's PEP 517 editable-install path) is
unavailable.
"""

from setuptools import setup

setup()
