"""Root pytest configuration: experiment-engine command-line knobs.

Registered at the repository root so they are available both for the tier-1
test suite and for the benchmark suite (``pytest benchmarks/...``):

* ``--workers N``   — process-pool size for experiment grids (0 = all cores);
* ``--cache-dir D`` — content-addressed trial-result cache directory;
* ``--no-cache``    — ignore ``--cache-dir`` / cached results;
* ``--distributed`` — hand trials to independently started
  ``python -m repro.runner.worker`` daemons instead of a local pool;
* ``--spool-dir D`` — shared spool directory for ``--distributed``.

The benchmark fixtures in ``benchmarks/conftest.py`` translate these (and
their ``REPRO_BENCH_*`` environment-variable fallbacks) into an
:class:`repro.runner.ExecutionConfig`.
"""


def pytest_addoption(parser):
    group = parser.getgroup("repro-engine", "experiment execution engine")
    group.addoption(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for experiment grids (0 = all cores, default serial)",
    )
    group.addoption(
        "--cache-dir",
        default=None,
        help="content-addressed trial-result cache directory (default: no cache)",
    )
    group.addoption(
        "--no-cache",
        action="store_true",
        default=False,
        help="disable the trial-result cache even if --cache-dir is set",
    )
    group.addoption(
        "--distributed",
        action="store_true",
        default=False,
        help="run grids through the spool broker / worker daemons "
        "(requires --spool-dir and --cache-dir)",
    )
    group.addoption(
        "--spool-dir",
        default=None,
        help="shared spool directory for --distributed "
        "(the workers' --spool argument)",
    )
