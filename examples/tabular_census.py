"""Label a tabular (Census-style) dataset with decision-stump label functions.

Tabular datasets exercise the second LF family of the paper: the simulated
user writes single-feature decision stumps with the query instance on the
boundary, and ActiveDP leans almost entirely on its active-learning model
(alpha = 0.99).  The script prints the stumps the user wrote, the LF subset
LabelPick keeps, and the ConFusion threshold dynamics.

Usage::

    python examples/tabular_census.py [--dataset census] [--iterations 50]
"""

from __future__ import annotations

import argparse

from repro import ActiveDP, ActiveDPConfig, load_dataset
from repro.labeling import LFAnalysis, apply_lfs
from repro.simulation import SimulatedUser


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="census", choices=["census", "occupancy"])
    parser.add_argument("--iterations", type=int, default=50)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    split = load_dataset(args.dataset, scale=args.scale, random_state=args.seed)
    print(f"{split.task}: {len(split.train)} training rows, "
          f"{split.train.n_features} features "
          f"({', '.join(split.train.feature_names[:5])}, ...)")

    config = ActiveDPConfig.for_dataset_kind("tabular")
    framework = ActiveDP(split.train, split.valid, config, random_state=args.seed)
    user = SimulatedUser(split.train, random_state=args.seed)

    for iteration in range(1, args.iterations + 1):
        record = framework.step(user)
        if iteration % 10 == 0:
            threshold = f"{record.threshold:.2f}" if record.threshold is not None else "n/a"
            print(f"  iter {iteration:3d}: LFs={record.n_lfs:3d} "
                  f"selected={record.n_selected_lfs:3d} ConFusion threshold={threshold}")

    print("\nDecision stumps written by the simulated user (first 8):")
    feature_names = split.train.feature_names
    for lf in framework.lfs[:8]:
        print(f"  {feature_names[lf.feature]} {lf.op} {lf.value:.3g} -> class {lf.label}")

    print("\nLF diagnostics on the training pool (selected LFs only):")
    selected = framework.selected_lfs
    matrix = apply_lfs(selected, split.train)
    analysis = LFAnalysis(matrix, [lf.name for lf in selected])
    for summary in analysis.summary(split.train.labels)[:8]:
        print(f"  {summary.name:30s} coverage={summary.coverage:.2f} "
              f"accuracy={summary.accuracy:.2f} conflict={summary.conflict:.2f}")

    quality = framework.label_quality()
    print(f"\nAggregated training labels: coverage={quality['coverage']:.2f} "
          f"accuracy={quality['accuracy']:.3f}")
    print(f"Downstream model test accuracy: "
          f"{framework.evaluate_end_model(split.test):.3f}")


if __name__ == "__main__":
    main()
