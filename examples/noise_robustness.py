"""Study ActiveDP's robustness to label noise (the Table 5 experiment).

Runs ActiveDP with a noisy simulated user at several noise rates and reports
how pseudo-label accuracy, aggregated-label accuracy and downstream test
accuracy degrade — the mechanism behind Table 5 of the paper.

Usage::

    python examples/noise_robustness.py [--dataset yelp] [--iterations 40]
"""

from __future__ import annotations

import argparse

from repro import ActiveDP, ActiveDPConfig, load_dataset
from repro.simulation import NoisySimulatedUser


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="yelp")
    parser.add_argument("--iterations", type=int, default=40)
    parser.add_argument("--scale", type=float, default=0.4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--noise-rates", type=float, nargs="+", default=[0.0, 0.05, 0.10, 0.15]
    )
    args = parser.parse_args()

    split = load_dataset(args.dataset, scale=args.scale, random_state=args.seed)
    print(f"Dataset {args.dataset!r}: {len(split.train)} training instances\n")
    print(f"{'noise':>6s} {'noisy answers':>14s} {'pseudo acc':>11s} "
          f"{'label acc':>10s} {'label cov':>10s} {'test acc':>9s}")

    for noise_rate in args.noise_rates:
        config = ActiveDPConfig.for_dataset_kind(split.kind)
        framework = ActiveDP(split.train, split.valid, config, random_state=args.seed)
        user = NoisySimulatedUser(
            split.train, noise_rate=noise_rate, random_state=args.seed
        )
        framework.run(user, args.iterations)
        quality = framework.label_quality()
        print(
            f"{noise_rate:6.0%} {user.n_noisy_responses:14d} "
            f"{framework.pseudo.accuracy(split.train):11.3f} "
            f"{quality['accuracy']:10.3f} {quality['coverage']:10.3f} "
            f"{framework.evaluate_end_model(split.test):9.3f}"
        )


if __name__ == "__main__":
    main()
