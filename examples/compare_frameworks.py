"""Compare ActiveDP against the paper's baselines on one dataset.

Reproduces a single panel of Figure 3: runs ActiveDP, Nemo, IWS, Revising LF
and uncertainty sampling on the chosen dataset under the same labelling
budget and prints the downstream model's performance curve for each.

All frameworks are scheduled through the experiment engine, so the whole
comparison can run in parallel and reruns are served from the trial cache.

Usage::

    python examples/compare_frameworks.py [--dataset youtube] [--iterations 40] \
        [--workers 4] [--cache-dir .repro-cache] [--no-cache]
"""

from __future__ import annotations

import argparse

from repro.datasets import DATASET_PROFILES
from repro.experiments import EvaluationProtocol
from repro.experiments.figure3 import FIGURE3_FRAMEWORKS
from repro.experiments.reporting import format_curve_series
from repro.runner import ExecutionConfig, GridJob, last_report, run_experiment_grid


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="youtube", choices=sorted(DATASET_PROFILES))
    parser.add_argument("--iterations", type=int, default=40)
    parser.add_argument("--eval-every", type=int, default=10)
    parser.add_argument("--seeds", type=int, default=1)
    parser.add_argument("--scale", type=float, default=0.4)
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool size for the grid (0 = all cores)")
    parser.add_argument("--cache-dir", default=None,
                        help="trial-result cache directory (reruns become near-instant)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the trial-result cache")
    args = parser.parse_args()

    protocol = EvaluationProtocol(
        n_iterations=args.iterations,
        eval_every=args.eval_every,
        n_seeds=args.seeds,
        dataset_scale=args.scale,
    )
    execution = ExecutionConfig(
        workers=args.workers, cache_dir=args.cache_dir, use_cache=not args.no_cache
    )
    kind = DATASET_PROFILES[args.dataset].kind

    print(f"Comparing frameworks on {args.dataset!r} "
          f"({args.iterations} iterations, {args.seeds} seed(s), "
          f"{args.workers} worker(s))\n")
    jobs = []
    for framework in FIGURE3_FRAMEWORKS:
        if framework == "nemo" and kind == "tabular":
            print(f"  {framework:12s}  skipped (text-only baseline)")
            continue
        jobs.append(GridJob(key=framework, framework=framework, dataset=args.dataset))
    results = run_experiment_grid(jobs, protocol, execution)

    scores = {}
    for framework, result in results.items():
        scores[framework] = result.average_accuracy
        print(f"  {format_curve_series(result)}")
    print(f"\nEngine: {last_report()}")

    print("\nAverage test accuracy during the run (the paper's headline metric):")
    for framework, score in sorted(scores.items(), key=lambda item: -item[1]):
        print(f"  {framework:12s} {score:.4f}")


if __name__ == "__main__":
    main()
