"""Compare ActiveDP against the paper's baselines on one dataset.

Reproduces a single panel of Figure 3: runs ActiveDP, Nemo, IWS, Revising LF
and uncertainty sampling on the chosen dataset under the same labelling
budget and prints the downstream model's performance curve for each.

Usage::

    python examples/compare_frameworks.py [--dataset youtube] [--iterations 40]
"""

from __future__ import annotations

import argparse

from repro.datasets import DATASET_PROFILES
from repro.experiments import EvaluationProtocol, run_framework_on_dataset
from repro.experiments.figure3 import FIGURE3_FRAMEWORKS
from repro.experiments.reporting import format_curve_series


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="youtube", choices=sorted(DATASET_PROFILES))
    parser.add_argument("--iterations", type=int, default=40)
    parser.add_argument("--eval-every", type=int, default=10)
    parser.add_argument("--seeds", type=int, default=1)
    parser.add_argument("--scale", type=float, default=0.4)
    args = parser.parse_args()

    protocol = EvaluationProtocol(
        n_iterations=args.iterations,
        eval_every=args.eval_every,
        n_seeds=args.seeds,
        dataset_scale=args.scale,
    )
    kind = DATASET_PROFILES[args.dataset].kind

    print(f"Comparing frameworks on {args.dataset!r} "
          f"({args.iterations} iterations, {args.seeds} seed(s))\n")
    scores = {}
    for framework in FIGURE3_FRAMEWORKS:
        if framework == "nemo" and kind == "tabular":
            print(f"  {framework:12s}  skipped (text-only baseline)")
            continue
        result = run_framework_on_dataset(framework, args.dataset, protocol)
        scores[framework] = result.average_accuracy
        print(f"  {format_curve_series(result)}")

    print("\nAverage test accuracy during the run (the paper's headline metric):")
    for framework, score in sorted(scores.items(), key=lambda item: -item[1]):
        print(f"  {framework:12s} {score:.4f}")


if __name__ == "__main__":
    main()
