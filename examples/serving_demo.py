"""Run the always-on labeling service end to end on a single machine.

Demonstrates the serving layer over a live worker fleet:

1. start ``python -m repro.serving.server`` as a subprocess (ephemeral
   port, parsed from its startup line) over a shared spool/cache;
2. start one elastic supervisor (``python -m repro.runner.supervisor``)
   that scales worker daemons to the queue;
3. submit a cold label request over HTTP, poll it to completion, and
   verify the response is **byte-identical** to a direct in-process engine
   run of the same canonicalised spec;
4. repeat the request and verify it is served warm from the result store
   with **zero** new broker enqueues (``/stats`` proves it);
5. stream LFs into an interactive session, force an eviction to disk
   mid-stream, resume, and verify the final labels match an uninterrupted
   session;
6. SIGINT the server and verify it drains and exits cleanly (code 0).

Usage::

    python examples/serving_demo.py [--dataset youtube] [--scale 0.15] \
        [--broker spool] [--results pickle] [--num-workers 2] [--keep-dirs]
"""

from __future__ import annotations

import argparse
import json
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

from repro.runner import BROKER_BACKENDS, RESULT_STORE_BACKENDS, run_trial
from repro.runner.fleet import fleet_paths, subprocess_env, supervisor_command
from repro.serving.schemas import canonical_json, label_payload, parse_label_request
from repro.serving.sessions import LabelingSession

LFS = [
    {"type": "keyword", "keyword": "check", "label": 1},
    {"type": "keyword", "keyword": "subscribe", "label": 1},
    {"type": "keyword", "keyword": "song", "label": 0},
    {"type": "keyword", "keyword": "love", "label": 0},
]


def http(base: str, method: str, path: str, body=None):
    """One JSON request; returns ``(status, payload)``."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(base + path, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def http_raw(base: str, method: str, path: str, body=None) -> bytes:
    """One JSON request; returns the exact response bytes (2xx only)."""
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(base + path, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.read()


def start_server(spool: str, cache_dir: str, broker: str, results: str):
    """Launch the serving daemon; returns ``(process, base_url)``."""
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serving.server",
            "--spool", spool, "--cache-dir", cache_dir,
            "--broker", broker, "--results", results,
            "--port", "0", "--poll-interval", "0.1",
        ],
        env=subprocess_env(),
        stdout=subprocess.PIPE,
        text=True,
    )
    line = process.stdout.readline().strip()
    assert line.startswith("serving http://"), f"unexpected startup line: {line!r}"
    return process, line.split(" ", 1)[1]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="youtube")
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument("--broker", default="spool", choices=BROKER_BACKENDS)
    parser.add_argument("--results", default="pickle", choices=RESULT_STORE_BACKENDS)
    parser.add_argument("--num-workers", type=int, default=2)
    parser.add_argument("--work-dir", default=None)
    parser.add_argument("--keep-dirs", action="store_true")
    args = parser.parse_args()

    work_dir = args.work_dir or tempfile.mkdtemp(prefix="repro-serving-")
    spool, cache_dir = fleet_paths(work_dir)
    body = {"dataset": args.dataset, "lfs": LFS, "scale": args.scale}

    print(f"Starting labeling server [broker={args.broker}, results={args.results}] ...")
    server, base = start_server(spool, cache_dir, args.broker, args.results)
    print(f"  server up at {base}")
    print(f"Starting a supervisor (max {args.num_workers} workers) ...")
    supervisor = subprocess.Popen(
        supervisor_command(
            spool, cache_dir, broker=args.broker, results=args.results,
            max_workers=args.num_workers, tasks_per_worker=1,
            worker_idle_timeout=5, interval=0.3,
        ),
        env=subprocess_env(),
    )

    try:
        status, payload = http(base, "GET", "/healthz")
        assert (status, payload["status"]) == (200, "ok")

        print("Submitting a cold label request ...")
        status, payload = http(base, "POST", "/label", body)
        assert status == 202, (status, payload)
        key = payload["key"]
        deadline = time.monotonic() + 300
        while True:
            status, payload = http(base, "GET", f"/label/{key}")
            if status != 202:
                break
            assert time.monotonic() < deadline, "label job timed out"
            time.sleep(0.2)
        assert status == 200, (status, payload)
        served = http_raw(base, "GET", f"/label/{key}")
        print(f"  done: final_test_accuracy={payload['final_test_accuracy']:.4f}")

        print("Verifying byte-identity against a direct engine run ...")
        spec = parse_label_request(body)
        direct = canonical_json(label_payload(spec, run_trial(spec)))
        assert served == direct, "served payload differs from the direct engine run"
        print(f"  {len(served)} bytes, identical")

        print("Repeating the request (must be warm, zero new enqueues) ...")
        warm = http_raw(base, "POST", "/label", body)
        assert warm == served
        _, stats = http(base, "GET", "/stats")
        assert stats["requests"]["enqueued"] == 1, stats["requests"]
        assert stats["requests"]["warm_hits"] == 1, stats["requests"]
        print(f"  warm hit; broker enqueues still {stats['requests']['enqueued']}")

        print("Streaming LFs into a session (evict + resume mid-stream) ...")
        _, info = http(
            base, "POST", "/sessions",
            {"dataset": args.dataset, "scale": args.scale, "seed": 7},
        )
        sid = info["session_id"]
        for lf in LFS[:2]:
            status, _payload = http(base, "POST", f"/sessions/{sid}/lfs", lf)
            assert status == 200
        status, payload = http(base, "POST", f"/sessions/{sid}/evict")
        assert (status, payload["evicted"]) == (200, True)
        for lf in LFS[2:]:
            status, _payload = http(base, "POST", f"/sessions/{sid}/lfs", lf)
            assert status == 200
        _, resumed = http(base, "GET", f"/sessions/{sid}/labels")
        control = LabelingSession("control", args.dataset, seed=7, scale=args.scale)
        for lf in LFS:
            control.add_lf(lf)
        strip = lambda p: {k: v for k, v in p.items() if k != "session"}  # noqa: E731
        assert canonical_json(strip(resumed)) == canonical_json(
            strip(control.label_payload())
        ), "evicted-then-resumed session diverged from the uninterrupted one"
        print(f"  resumed session identical (coverage={resumed['labels']['coverage']:.3f})")
    finally:
        print("Draining the server (SIGINT) ...")
        server.send_signal(signal.SIGINT)
        code = server.wait(timeout=120)
        assert code == 0, f"server exited {code}, expected clean drain (0)"
        print("  server drained and exited 0")
        supervisor.send_signal(signal.SIGINT)
        code = supervisor.wait(timeout=120)
        assert code == 130, f"supervisor exited {code}, expected 130 (SIGINT)"

    if args.keep_dirs:
        print(f"Spool/cache kept under {work_dir}")
    elif args.work_dir is None:
        shutil.rmtree(work_dir, ignore_errors=True)
    print("OK")


if __name__ == "__main__":
    main()
