"""Quickstart: label a spam-detection dataset with ActiveDP.

Runs the full ActiveDP loop on the synthetic Youtube-Spam stand-in with a
simulated user, prints the quality of the generated training labels every few
iterations, and finally trains and evaluates the downstream model — the
end-to-end workflow of Figure 1 in the paper.

Usage::

    python examples/quickstart.py [--iterations 60] [--scale 0.5] [--seed 0]
"""

from __future__ import annotations

import argparse

from repro import ActiveDP, ActiveDPConfig, load_dataset
from repro.simulation import SimulatedUser


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="youtube", help="benchmark dataset name")
    parser.add_argument("--iterations", type=int, default=60, help="labelling budget")
    parser.add_argument("--scale", type=float, default=0.5, help="synthetic corpus scale")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    args = parser.parse_args()

    print(f"Loading synthetic stand-in for the {args.dataset!r} dataset ...")
    split = load_dataset(args.dataset, scale=args.scale, random_state=args.seed)
    n_train, n_valid, n_test = split.sizes()
    print(f"  task: {split.task}   train/valid/test = {n_train}/{n_valid}/{n_test}")

    config = ActiveDPConfig.for_dataset_kind(split.kind)
    framework = ActiveDP(split.train, split.valid, config, random_state=args.seed)
    user = SimulatedUser(split.train, random_state=args.seed)

    print(f"\nRunning {args.iterations} interactive iterations "
          f"(sampler={config.sampler}, alpha={config.alpha}) ...")
    for iteration in range(1, args.iterations + 1):
        record = framework.step(user)
        if iteration % 10 == 0:
            quality = framework.label_quality()
            print(
                f"  iter {iteration:3d}: LFs={record.n_lfs:3d} "
                f"selected={record.n_selected_lfs:3d} "
                f"label coverage={quality['coverage']:.2f} "
                f"label accuracy={quality['accuracy']:.3f}"
            )

    print("\nFinal label functions selected by LabelPick:")
    for lf in framework.selected_lfs[:10]:
        print(f"  {lf.name}")
    if len(framework.selected_lfs) > 10:
        print(f"  ... and {len(framework.selected_lfs) - 10} more")

    test_accuracy = framework.evaluate_end_model(split.test)
    print(f"\nDownstream model test accuracy: {test_accuracy:.3f}")


if __name__ == "__main__":
    main()
