"""Run one experiment grid across multiple independent worker processes.

Demonstrates the distributed execution backend end to end on a single
machine (the protocol is identical across machines — point the workers at a
shared spool/cache directory, e.g. an NFS mount):

1. spawn ``--num-workers`` completely independent
   ``python -m repro.runner.worker`` processes (they know nothing about the
   submitter — only the spool and cache directories);
2. submit a framework-comparison grid with
   ``ExecutionConfig(mode="distributed", ...)``: the engine enqueues the
   trials on the spool, the workers lease and execute them, and the engine
   assembles the ``GridReport`` by polling the shared cache;
3. re-run the same grid serially in-process (cache bypassed) and verify the
   per-trial histories are byte-identical — distribution changes where
   trials run, never what they compute.

Usage::

    python examples/distributed_grid.py [--dataset youtube] [--iterations 10] \
        [--num-workers 2] [--seeds 2] [--shard-by dataset] [--claim-batch 8] \
        [--keep-dirs]
"""

from __future__ import annotations

import argparse
import os
import pickle
import shutil
import subprocess
import sys
import tempfile

import repro
from repro.datasets import DATASET_PROFILES
from repro.experiments import EvaluationProtocol
from repro.runner import (
    DEFAULT_CLAIM_BATCH,
    SHARD_POLICIES,
    ExecutionConfig,
    GridJob,
    last_report,
    run_experiment_grid,
)


def spawn_worker(
    spool: str, cache_dir: str, index: int, claim_batch: int
) -> subprocess.Popen:
    """Start one worker daemon as a fully independent subprocess."""
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.runner.worker",
            "--spool",
            spool,
            "--cache-dir",
            cache_dir,
            "--idle-timeout",
            "5",
            "--claim-batch",
            str(claim_batch),
            "--worker-id",
            f"example-{index}",
        ],
        env=env,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="youtube", choices=sorted(DATASET_PROFILES))
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--seeds", type=int, default=2)
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--num-workers", type=int, default=2,
                        help="independent worker processes to spawn")
    parser.add_argument("--shard-by", default="dataset", choices=SHARD_POLICIES,
                        help="spool shard policy (dataset keeps workers on "
                             "corpora they already generated)")
    parser.add_argument("--claim-batch", type=int, default=DEFAULT_CLAIM_BATCH,
                        help="tasks each worker claims per spool scan")
    parser.add_argument("--work-dir", default=None,
                        help="spool/cache parent directory (default: a temp dir)")
    parser.add_argument("--keep-dirs", action="store_true",
                        help="leave the spool and cache directories behind")
    args = parser.parse_args()

    work_dir = args.work_dir or tempfile.mkdtemp(prefix="repro-distributed-")
    spool = os.path.join(work_dir, "spool")
    cache_dir = os.path.join(work_dir, "cache")

    protocol = EvaluationProtocol(
        n_iterations=args.iterations,
        eval_every=max(args.iterations // 2, 1),
        n_seeds=args.seeds,
        dataset_scale=args.scale,
    )
    jobs = [
        GridJob(key=framework, framework=framework, dataset=args.dataset)
        for framework in ("activedp", "uncertainty")
    ]

    print(f"Spawning {args.num_workers} worker daemon(s) against {spool} "
          f"(shard_by={args.shard_by}, claim_batch={args.claim_batch}) ...")
    workers = [
        spawn_worker(spool, cache_dir, i, args.claim_batch)
        for i in range(args.num_workers)
    ]
    try:
        print(f"Submitting {len(jobs)} job(s) x {args.seeds} seed(s) distributed ...")
        distributed = run_experiment_grid(
            jobs,
            protocol,
            ExecutionConfig(
                mode="distributed",
                spool_dir=spool,
                cache_dir=cache_dir,
                wait_timeout=600,
                shard_by=args.shard_by,
                claim_batch=args.claim_batch,
            ),
        )
        print(f"  engine: {last_report()}")
    finally:
        for worker in workers:
            worker.wait(timeout=60)

    print("Re-running the same grid serially in-process (no cache) ...")
    serial = run_experiment_grid(
        jobs, protocol, ExecutionConfig(workers=1, use_cache=False)
    )

    for key in serial:
        pairs = zip(serial[key].histories, distributed[key].histories)
        assert all(pickle.dumps(a) == pickle.dumps(b) for a, b in pairs), key
        print(f"  {key:12s} avg_acc={serial[key].average_accuracy:.4f}  "
              "(distributed == serial, byte-identical)")

    if args.keep_dirs:
        print(f"Spool/cache kept under {work_dir}")
    elif args.work_dir is None:
        shutil.rmtree(work_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
