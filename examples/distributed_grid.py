"""Run one experiment grid across multiple independent worker processes.

Demonstrates the distributed execution backend end to end on a single
machine (the protocol is identical across machines — point the workers at a
shared spool/cache directory, e.g. an NFS mount):

1. spawn ``--num-workers`` completely independent
   ``python -m repro.runner.worker`` processes (they know nothing about the
   submitter — only the queue and cache locations), or, with
   ``--supervise``, one ``python -m repro.runner.supervisor`` that scales
   the worker fleet to the queue by itself;
2. submit a framework-comparison grid with
   ``ExecutionConfig(mode="distributed", ...)``: the engine enqueues the
   trials on the broker (``--broker`` picks the backend — the filesystem
   spool or the SQLite queue), the workers lease and execute them, and the
   engine assembles the ``GridReport`` by polling the shared cache;
3. re-run the same grid serially in-process (cache bypassed) and verify the
   per-trial histories are byte-identical — distribution changes where
   trials run, never what they compute, under either backend.

Usage::

    python examples/distributed_grid.py [--dataset youtube] [--iterations 10] \
        [--num-workers 2] [--seeds 2] [--broker spool] [--results pickle] \
        [--supervise] [--shard-by dataset] [--claim-batch 8] [--keep-dirs]

With ``--results indexed`` the workers additionally materialise every
published result into the cache's ``results.sqlite3`` run-history index,
and the example finishes by smoking the ``python -m repro.runner.query``
CLI (``--reindex`` + a leaderboard) against it.
"""

from __future__ import annotations

import argparse
import pickle
import shutil
import signal
import subprocess
import sys
import tempfile

from repro.datasets import DATASET_PROFILES
from repro.experiments import EvaluationProtocol
from repro.runner import (
    BROKER_BACKENDS,
    DEFAULT_CLAIM_BATCH,
    RESULT_STORE_BACKENDS,
    SHARD_POLICIES,
    ExecutionConfig,
    GridJob,
    last_report,
    run_experiment_grid,
)
from repro.runner.fleet import (
    fleet_paths,
    subprocess_env,
    supervisor_command,
    worker_command,
)


def spawn_worker(
    spool: str, cache_dir: str, index: int, claim_batch: int, broker: str,
    results: str,
) -> subprocess.Popen:
    """Start one worker daemon as a fully independent subprocess."""
    return subprocess.Popen(
        worker_command(
            spool,
            cache_dir,
            broker=broker,
            results=results,
            idle_timeout=5,
            claim_batch=claim_batch,
            worker_id=f"example-{index}",
        ),
        env=subprocess_env(),
    )


def spawn_supervisor(
    spool: str, cache_dir: str, max_workers: int, claim_batch: int, broker: str,
    results: str,
) -> subprocess.Popen:
    """Start the elastic fleet supervisor (it spawns the workers itself)."""
    return subprocess.Popen(
        supervisor_command(
            spool,
            cache_dir,
            broker=broker,
            results=results,
            max_workers=max_workers,
            tasks_per_worker=1,
            worker_idle_timeout=5,
            claim_batch=claim_batch,
            interval=0.3,
        ),
        env=subprocess_env(),
    )


def smoke_query_cli(cache_dir: str) -> None:
    """Exercise the run-history query CLI against the populated cache.

    Rebuilds the index from the blobs (``--reindex`` must converge to what
    the workers wrote incrementally) and runs a framework leaderboard — the
    two subcommands a fresh adopter of an existing cache would reach for.
    """
    for label, command in (
        ("reindex", ["--cache-dir", cache_dir, "--reindex", "--counts"]),
        ("leaderboard", ["--cache-dir", cache_dir, "--leaderboard",
                         "--metric", "average_accuracy"]),
    ):
        result = subprocess.run(
            [sys.executable, "-m", "repro.runner.query", *command],
            env=subprocess_env(), capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0, (label, result.stderr)
        assert result.stdout.strip(), (label, "query printed nothing")
        print(f"  query CLI ({label}):")
        for line in result.stdout.strip().splitlines():
            print(f"    {line}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="youtube", choices=sorted(DATASET_PROFILES))
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--seeds", type=int, default=2)
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--num-workers", type=int, default=2,
                        help="independent worker processes to spawn (with "
                             "--supervise: the supervisor's --max-workers)")
    parser.add_argument("--broker", default="spool", choices=BROKER_BACKENDS,
                        help="broker backend coordinating submitter and workers")
    parser.add_argument("--results", default="pickle",
                        choices=RESULT_STORE_BACKENDS,
                        help="result-store backend (indexed additionally "
                             "builds the results.sqlite3 run-history index)")
    parser.add_argument("--supervise", action="store_true",
                        help="replace the hand-spawned workers with one "
                             "elastic supervisor process")
    parser.add_argument("--shard-by", default="dataset", choices=SHARD_POLICIES,
                        help="queue shard policy (dataset keeps workers on "
                             "corpora they already generated)")
    parser.add_argument("--claim-batch", type=int, default=DEFAULT_CLAIM_BATCH,
                        help="tasks each worker claims per queue scan")
    parser.add_argument("--work-dir", default=None,
                        help="spool/cache parent directory (default: a temp dir)")
    parser.add_argument("--keep-dirs", action="store_true",
                        help="leave the spool and cache directories behind")
    args = parser.parse_args()

    work_dir = args.work_dir or tempfile.mkdtemp(prefix="repro-distributed-")
    spool, cache_dir = fleet_paths(work_dir)

    protocol = EvaluationProtocol(
        n_iterations=args.iterations,
        eval_every=max(args.iterations // 2, 1),
        n_seeds=args.seeds,
        dataset_scale=args.scale,
    )
    jobs = [
        GridJob(key=framework, framework=framework, dataset=args.dataset)
        for framework in ("activedp", "uncertainty")
    ]

    supervisor = None
    workers: list[subprocess.Popen] = []
    if args.supervise:
        print(f"Spawning a supervisor (max {args.num_workers} workers) against "
              f"{spool} [broker={args.broker}] ...")
        supervisor = spawn_supervisor(
            spool, cache_dir, args.num_workers, args.claim_batch, args.broker,
            args.results,
        )
    else:
        print(f"Spawning {args.num_workers} worker daemon(s) against {spool} "
              f"[broker={args.broker}, shard_by={args.shard_by}, "
              f"claim_batch={args.claim_batch}] ...")
        workers = [
            spawn_worker(
                spool, cache_dir, i, args.claim_batch, args.broker, args.results
            )
            for i in range(args.num_workers)
        ]
    try:
        print(f"Submitting {len(jobs)} job(s) x {args.seeds} seed(s) distributed ...")
        distributed = run_experiment_grid(
            jobs,
            protocol,
            ExecutionConfig(
                mode="distributed",
                broker=args.broker,
                spool_dir=spool,
                cache_dir=cache_dir,
                results=args.results,
                wait_timeout=600,
                shard_by=args.shard_by,
                claim_batch=args.claim_batch,
            ),
        )
        print(f"  engine: {last_report()}")
    finally:
        for worker in workers:
            worker.wait(timeout=60)
        if supervisor is not None:
            # Service-mode supervisor: ask the fleet to stand down now that
            # the grid is done (exit 130 is its clean-interrupt code).
            supervisor.send_signal(signal.SIGINT)
            code = supervisor.wait(timeout=60)
            assert code == 130, f"supervisor exited {code}, expected 130 (SIGINT)"

    print("Re-running the same grid serially in-process (no cache) ...")
    serial = run_experiment_grid(
        jobs, protocol, ExecutionConfig(workers=1, use_cache=False)
    )

    for key in serial:
        pairs = zip(serial[key].histories, distributed[key].histories)
        assert all(pickle.dumps(a) == pickle.dumps(b) for a, b in pairs), key
        print(f"  {key:12s} avg_acc={serial[key].average_accuracy:.4f}  "
              "(distributed == serial, byte-identical)")

    if args.results == "indexed":
        smoke_query_cli(cache_dir)

    if args.keep_dirs:
        print(f"Spool/cache kept under {work_dir}")
    elif args.work_dir is None:
        shutil.rmtree(work_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
